"""Streaming sharded holdout evaluation over pluggable block sources.

The PR 1 batched diff engine evaluates all k candidate parameters against
the holdout in one GEMM but materialises the full ``(k, n_holdout)``
prediction block, which caps holdout size well below the million-user
target.  This module is the driver half of the streaming replacement:

* the holdout is consumed as contiguous row blocks through the
  :class:`BlockSource` protocol — an in-memory
  :class:`~repro.data.dataset.Dataset` (zero-copy slice views) or an
  out-of-core :class:`~repro.data.store.ShardedDataset` (zero-copy
  memory-mapped shard slices, block bounds snapped to shard boundaries);
* each block is fed to a :class:`~repro.models.base.DiffAccumulator`
  obtained from the model spec, which folds the block into per-candidate
  disagreement counts / squared-error sums;
* memory therefore stays O(k · block) no matter how large the holdout is —
  and with a sharded source, the *data* is never resident either;
* optionally, contiguous block ranges fan out across an executor.  Two
  backends: ``"threads"`` (NumPy releases the GIL inside the per-block
  GEMMs — right for the built-in families) and ``"processes"`` (a process
  pool for GIL-bound custom model specs; each worker builds its own
  accumulator from the spec, consumes its block range, and the parent
  merges the returned partials with the ordinary
  :meth:`DiffAccumulator.merge` path).

Process-backend requirements: the spec, the source and the accumulator's
partial state must be picklable, and — as with any ``spawn``/``forkserver``
multiprocessing — the program's entry module must be import-safe (guard
script entry points with ``if __name__ == "__main__":``; code piped to
stdin cannot host process workers).  The built-in specs and accumulators are
(:class:`~repro.models.base.BlockSumDiffAccumulator` pickles its sums and
row count and drops its closures — a restored partial can be merged, not
updated); a ``ShardedDataset`` ships as its store path, so workers re-open
their own memory maps instead of copying rows, while an in-memory
``Dataset`` is copied once per worker — the process backend pairs best
with sharded sources.

Layering (see ``docs/architecture.md``): the estimation session and the
accuracy / sample-size estimators call the two ``streaming_*`` functions
below; the functions drive the spec's accumulators; only the model families
know how to decompose their metric over blocks; only the block source knows
where the rows live.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.config import (
    DEFAULT_HOLDOUT_BLOCK_ROWS,
    DEFAULT_STREAMING_BACKEND,
    DEFAULT_STREAMING_WORKERS,
)
from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.models.base import DiffAccumulator, ModelClassSpec
from repro.obs import current_pass_scope, get_metrics, maybe_span, obs_enabled

#: executor backends accepted by :class:`StreamingConfig`.
STREAMING_BACKENDS = ("threads", "processes")

# Streamed-pass accounting: one tick per stream_accumulate() call that
# actually consumes holdout blocks (parameter-space metrics and the
# materialised fallback never stream and never count).  The coalescing
# serving tier's "passes saved" accounting is defined against this counter:
# tests and the bench_coalesced_serving gate measure fused-vs-serial
# executions by diffing it, so it must tick exactly once per pass no matter
# how many fan-out segments the pass carries.  Since the observability tier
# the counter lives in the process-global metrics registry, labelled by the
# calling scope ("accuracy" / "size-search" / "statistics" / "unscoped")
# and session label the caller set via repro.obs.pass_scope();
# streaming_pass_count() stays as a thin label-blind reader so every
# existing diff-two-readings call site keeps working unchanged.
#
# Processes-backend audit: the tick happens here in the *parent*, before
# any fan-out.  Process workers execute _run_block_range only — they never
# call stream_accumulate, so no increment can be lost in (or double-counted
# by) a worker process whose registry dies with it; the same reasoning
# keeps the per-pass telemetry below parent-side.  The counter is always
# live (not gated by obs_enabled) because pass economy is this library's
# central claim, not optional telemetry.
_PASSES_TOTAL = get_metrics().counter(
    "repro_streaming_passes_total",
    "Streamed passes over a block source (one per stream_accumulate() "
    "call that consumes holdout blocks).",
    ("scope", "session"),
)
_PASS_BLOCKS_TOTAL = get_metrics().counter(
    "repro_streaming_blocks_total",
    "Holdout blocks consumed by streamed passes (parent-side accounting).",
    ("scope",),
)
_PASS_ROWS_TOTAL = get_metrics().counter(
    "repro_streaming_rows_total",
    "Holdout rows swept by streamed passes.",
    ("scope",),
)
_PASS_BYTES_TOTAL = get_metrics().counter(
    "repro_streaming_bytes_total",
    "Approximate bytes of holdout data swept by streamed passes "
    "(rows x 8-byte features, labels included).",
    ("scope",),
)
_PASS_SECONDS = get_metrics().histogram(
    "repro_streaming_pass_seconds",
    "Wall time of one streamed pass (fan-out included).",
    ("scope",),
)


def _count_streaming_pass() -> None:
    scope, session = current_pass_scope()
    _PASSES_TOTAL.inc(1, scope=scope, session=session)


def streaming_pass_count() -> int:
    """Process-lifetime count of streamed passes over any block source.

    Monotonic and thread-safe; diff two readings around a workload to count
    the holdout passes it cost.  Counts *passes*, not blocks and not
    segments: a fan-out pass evaluating many candidate segments in one
    block sweep counts once — that is precisely the economy the
    request-coalescing tier exists to create.

    A thin reader over the ``repro_streaming_passes_total`` metric (summed
    across its scope/session labels); scrape the registry
    (:func:`repro.obs.get_metrics`) for the per-scope attribution.
    """
    return int(_PASSES_TOTAL.total())


def _approx_pass_nbytes(blocks: BlockSource) -> int:
    """Approximate bytes one full sweep of ``blocks`` reads.

    Exact for in-memory datasets (the buffers' nbytes); sharded sources
    are estimated from the manifest row/feature counts (float64 features
    plus a label column when supervised) without touching a shard.  Zero
    for sources exposing neither surface — the bytes metric is telemetry,
    never accounting.
    """
    if isinstance(blocks, _DatasetBlocks):
        dataset = blocks._dataset
        y_nbytes = 0 if dataset.y is None else int(dataset.y.nbytes)
        return int(dataset.X.nbytes) + y_nbytes
    n_features = getattr(blocks, "n_features", None)
    if n_features is None:
        return 0
    columns = int(n_features) + (1 if getattr(blocks, "is_supervised", False) else 0)
    return blocks.n_rows * 8 * columns


@runtime_checkable
class BlockSource(Protocol):
    """Anything the streaming engine can shard into contiguous row blocks.

    Implemented by :class:`~repro.data.store.ShardedDataset`; in-memory
    :class:`Dataset` objects are adapted internally.  ``block_bounds`` must
    return contiguous, in-order ``[start, stop)`` ranges tiling
    ``[0, n_rows)``, each at most ``block_rows`` rows; ``read_block`` must
    return those rows as a :class:`Dataset` (zero-copy wherever possible).
    """

    @property
    def n_rows(self) -> int: ...

    def block_bounds(self, block_rows: int) -> list[tuple[int, int]]: ...

    def read_block(self, start: int, stop: int) -> Dataset: ...


@dataclass(frozen=True)
class StreamingConfig:
    """How the holdout is sharded and which executor fans the blocks out.

    Parameters
    ----------
    block_rows:
        Rows per holdout block; peak memory of a streamed diff is
        O(k · block_rows).
    n_workers:
        0 or 1 processes blocks serially on the calling thread; larger
        values split the block sequence into that many contiguous ranges
        and run them on the configured executor, merging partials in
        holdout order.
    backend:
        ``"threads"`` (default) or ``"processes"``.  Threads suit the
        built-in NumPy families (the GIL is released inside the per-block
        GEMMs); processes suit GIL-bound custom specs — see the module
        docstring for the picklability requirements.
    """

    block_rows: int = DEFAULT_HOLDOUT_BLOCK_ROWS
    n_workers: int = DEFAULT_STREAMING_WORKERS
    backend: str = DEFAULT_STREAMING_BACKEND

    def __post_init__(self) -> None:
        if self.block_rows < 1:
            raise DataError("block_rows must be at least 1")
        if self.n_workers < 0:
            raise DataError("n_workers must be non-negative")
        if self.backend not in STREAMING_BACKENDS:
            raise DataError(
                f"unknown streaming backend {self.backend!r}; "
                f"expected one of {STREAMING_BACKENDS}"
            )


#: module default used whenever a caller passes ``config=None``.
DEFAULT_STREAMING_CONFIG = StreamingConfig()


def _block_view(dataset: Dataset, start: int, stop: int) -> Dataset:
    """A zero-copy row-slice view of ``dataset`` (contiguous slices only).

    The X/y buffers are views; metadata is propagated like every other
    Dataset transformation so metadata-aware custom accumulators see the
    same context on the streaming path as on the materialised one.
    """
    y = None if dataset.y is None else dataset.y[start:stop]
    return Dataset(
        dataset.X[start:stop], y, name=dataset.name, metadata=dict(dataset.metadata)
    )


class _DatasetBlocks:
    """Adapter giving an in-memory :class:`Dataset` the block-source surface."""

    __slots__ = ("_dataset",)

    def __init__(self, dataset: Dataset):
        self._dataset = dataset

    @property
    def n_rows(self) -> int:
        return self._dataset.n_rows

    def block_bounds(self, block_rows: int) -> list[tuple[int, int]]:
        if block_rows < 1:
            raise DataError("block_rows must be at least 1")
        n = self._dataset.n_rows
        return [
            (start, min(start + block_rows, n)) for start in range(0, n, block_rows)
        ]

    def read_block(self, start: int, stop: int) -> Dataset:
        return _block_view(self._dataset, start, stop)


def as_block_source(source: "Dataset | BlockSource") -> BlockSource:
    """Adapt ``source`` to the block-source surface (Datasets are wrapped)."""
    if isinstance(source, Dataset):
        return _DatasetBlocks(source)
    for attribute in ("n_rows", "block_bounds", "read_block"):
        if not hasattr(source, attribute):
            raise DataError(
                f"{type(source).__name__} is neither a Dataset nor a BlockSource "
                f"(missing {attribute!r})"
            )
    return source


def iter_holdout_blocks(
    source: "Dataset | BlockSource", block_rows: int
) -> Iterator[Dataset]:
    """Yield the holdout as contiguous zero-copy blocks of ``<= block_rows`` rows.

    With a :class:`~repro.data.store.ShardedDataset` source the bounds snap
    to shard boundaries, so some blocks are shorter than ``block_rows`` but
    none ever crosses a shard (no cross-shard copies).
    """
    blocks = as_block_source(source)
    for start, stop in blocks.block_bounds(block_rows):
        yield blocks.read_block(start, stop)


@runtime_checkable
class StreamTask(Protocol):
    """Picklable recipe for one streamed block-fold evaluation.

    Anything :func:`stream_accumulate` can drive: it names the block source
    and knows how to build a fresh accumulator (an object with the
    :class:`~repro.models.base.DiffAccumulator` fold surface —
    ``needs_holdout_blocks`` / ``update`` / ``merge`` / ``finalize``).
    Implemented by the diff tasks below and by the statistics tasks in
    :mod:`repro.core.statistics`.
    """

    @property
    def source(self) -> "Dataset | BlockSource": ...

    def make_accumulator(self) -> DiffAccumulator: ...


@dataclass(frozen=True)
class _StreamTask:
    """Picklable recipe for one streamed diff evaluation.

    Carries everything a process worker needs to rebuild the accumulator
    locally: the spec, which factory to call, the parameter batches and the
    source.  Also used in-process as the single place the accumulator
    factory is defined.
    """

    spec: ModelClassSpec
    kind: str  # "diff" | "pairwise"
    Thetas_a: np.ndarray
    Thetas_b: np.ndarray
    source: "Dataset | BlockSource"

    def make_accumulator(self) -> DiffAccumulator:
        if self.kind == "diff":
            return self.spec.diff_accumulator(self.Thetas_a, self.Thetas_b, self.source)
        return self.spec.pairwise_diff_accumulator(
            self.Thetas_a, self.Thetas_b, self.source
        )


class FanoutDiffAccumulator(DiffAccumulator):
    """One block sweep folded into many independent sub-accumulators.

    The cross-caller coalescing primitive: each part is a complete
    per-segment accumulator (one per candidate sample size, k pairs each),
    and every holdout block is folded into all of them before the next
    block is read — so the union of many callers' candidate evaluations
    costs one pass over the data instead of one pass per caller.

    Determinism contract: each part sees exactly the blocks, block order
    and per-part parameter stack it would have seen running alone (the
    family closures are segment-local — ``predict_many`` runs per part
    with identical shapes either way), so the demultiplexed results are
    bitwise identical to serial per-segment passes.  ``finalize`` returns
    the *list* of per-part results, in part order.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[DiffAccumulator]):
        self.parts = list(parts)

    @property
    def needs_holdout_blocks(self) -> bool:
        return any(part.needs_holdout_blocks for part in self.parts)

    def update(self, block: Dataset) -> None:
        for part in self.parts:
            part.update(block)

    def merge(self, other: "FanoutDiffAccumulator") -> None:
        for mine, theirs in zip(self.parts, other.parts):
            mine.merge(theirs)

    def finalize(self) -> list:
        return [part.finalize() for part in self.parts]


@dataclass(frozen=True)
class _FanoutStreamTask:
    """Picklable recipe bundling several diff tasks into one block sweep.

    All member tasks must share one block source (the session holdout); the
    fan-out accumulator is simply each member's own accumulator driven in
    lockstep, so process workers rebuild and merge exactly as they do for a
    single task.
    """

    tasks: tuple[_StreamTask, ...]

    @property
    def source(self) -> "Dataset | BlockSource":
        return self.tasks[0].source

    def make_accumulator(self) -> FanoutDiffAccumulator:
        return FanoutDiffAccumulator([task.make_accumulator() for task in self.tasks])


def _run_block_range(task: StreamTask, bounds: list[tuple[int, int]]) -> DiffAccumulator:
    """Worker body (both backends): one fresh accumulator over one range.

    Top-level so the process backend can pickle it; with a sharded source
    the worker's ``read_block`` calls hit its own re-opened memory maps.
    """
    accumulator = task.make_accumulator()
    blocks = as_block_source(task.source)
    for start, stop in bounds:
        accumulator.update(blocks.read_block(start, stop))
    return accumulator


def _process_context() -> multiprocessing.context.BaseContext:
    """Forkserver where the platform offers it, the default elsewhere.

    ``fork`` (still the Linux default until Python 3.14) is unsafe in
    exactly the deployments this library promotes: a serving process with
    live threads (thread-backend sessions, registry locks, BLAS internals
    mid-GEMM) that forks can hand workers inherited locks in the held
    state.  ``forkserver`` forks from a clean single-threaded server
    instead, and its per-worker start-up cost is amortised by the shared
    pools below.  Workers import the worker function, spec classes and
    sources by reference, which everything in this module supports
    (top-level function, picklable tasks); platforms without forkserver
    (Windows) use their default, spawn, with the same pickling contract.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "forkserver" if "forkserver" in methods else None
    )


#: shared process pools, keyed by worker count.  Worker start-up (a full
#: interpreter under spawn/forkserver) is far too expensive to pay on every
#: streamed evaluation — one train_to() contract alone runs dozens — so
#: pools are created lazily and reused for the life of the process;
#: concurrent.futures' own exit hook joins them at interpreter shutdown.
_PROCESS_POOLS: dict[int, ProcessPoolExecutor] = {}  # guarded-by: _PROCESS_POOLS_LOCK
_PROCESS_POOLS_LOCK = threading.Lock()


def _shared_process_pool(max_workers: int) -> ProcessPoolExecutor:
    with _PROCESS_POOLS_LOCK:
        pool = _PROCESS_POOLS.get(max_workers)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_process_context()
            )
            _PROCESS_POOLS[max_workers] = pool
        return pool


def _discard_process_pool(max_workers: int, pool: ProcessPoolExecutor) -> None:
    """Drop a broken pool from the cache so the next call builds a fresh one."""
    with _PROCESS_POOLS_LOCK:
        if _PROCESS_POOLS.get(max_workers) is pool:
            del _PROCESS_POOLS[max_workers]
    pool.shutdown(wait=False, cancel_futures=True)


def _split_ranges(
    bounds: list[tuple[int, int]], n_workers: int
) -> list[list[tuple[int, int]]]:
    """Split the bound list into ``n_workers`` contiguous, in-order ranges."""
    splits = np.array_split(np.arange(len(bounds)), n_workers)
    return [[bounds[i] for i in split] for split in splits if split.size]


def stream_accumulate(task: StreamTask, config: StreamingConfig) -> Any:
    """Run one accumulator (or one per worker) over the task's block source.

    The generic executor core behind every streamed fold in the system: the
    two ``streaming_*`` diff functions below and the statistics tier's
    moment accumulation (:func:`repro.core.statistics.compute_statistics`)
    all delegate here.  Returns whatever the merged accumulator's
    ``finalize()`` produces — a per-candidate diff vector for the diff
    tasks, a moment summary for the statistics tasks.  Partials are always
    merged in source order, so results are independent of executor timing.
    """
    first = task.make_accumulator()
    if not first.needs_holdout_blocks:
        # Parameter-space metrics (PPCA) and the generic materialised
        # fallback: nothing to shard.
        return first.finalize()

    _count_streaming_pass()
    blocks = as_block_source(task.source)
    bounds = blocks.block_bounds(config.block_rows)
    if not obs_enabled():
        return _consume_blocks(task, first, blocks, bounds, config)
    # Extra per-pass telemetry (REPRO_OBS_ENABLED): a span plus block/row/
    # byte/wall-time metrics, recorded parent-side around the exact same
    # consumption path — the fold itself is untouched, so results are
    # bitwise identical with the flag on or off.
    scope, _session = current_pass_scope()
    started = time.monotonic()
    with maybe_span(
        "streaming.pass",
        scope=scope,
        backend=config.backend,
        blocks=len(bounds),
        rows=blocks.n_rows,
    ):
        result = _consume_blocks(task, first, blocks, bounds, config)
    _PASS_SECONDS.observe(time.monotonic() - started, scope=scope)
    _PASS_BLOCKS_TOTAL.inc(len(bounds), scope=scope)
    _PASS_ROWS_TOTAL.inc(blocks.n_rows, scope=scope)
    _PASS_BYTES_TOTAL.inc(_approx_pass_nbytes(blocks), scope=scope)
    return result


def _consume_blocks(
    task: StreamTask,
    first: DiffAccumulator,
    blocks: BlockSource,
    bounds: list[tuple[int, int]],
    config: StreamingConfig,
) -> Any:
    """The executor core of :func:`stream_accumulate` (one counted pass)."""
    if config.n_workers <= 1 or len(bounds) <= 1:
        for start, stop in bounds:
            first.update(blocks.read_block(start, stop))
        return first.finalize()

    # Contiguous block ranges per worker so merge order equals holdout order.
    n_workers = min(config.n_workers, len(bounds))
    ranges = _split_ranges(bounds, n_workers)

    if config.backend == "processes":
        # Workers rebuild the accumulator from the task (closures never
        # cross the process boundary) and return their partial state; the
        # parent merges the partials into its own full accumulator in
        # holdout order, so finalize() runs with the parent's closures.
        # The pool is shared across calls (see _shared_process_pool) and
        # keyed by the *configured* worker count, not this call's effective
        # range count — otherwise holdouts of varying sizes would accumulate
        # one persistent pool per distinct min(n_workers, n_blocks).  A
        # short call simply submits fewer tasks than the pool has workers.
        # A broken pool is discarded so later calls recover with a fresh one.
        pool = _shared_process_pool(config.n_workers)
        try:
            partials = list(pool.map(_run_block_range, [task] * len(ranges), ranges))
        except BrokenProcessPool:
            _discard_process_pool(config.n_workers, pool)
            raise
        for partial in partials:
            first.merge(partial)
        return first.finalize()

    accumulators = [first] + [task.make_accumulator() for _ in range(len(ranges) - 1)]

    def run_range(
        accumulator: DiffAccumulator, range_bounds: list[tuple[int, int]]
    ) -> DiffAccumulator:
        for start, stop in range_bounds:
            accumulator.update(blocks.read_block(start, stop))
        return accumulator

    with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
        done = list(pool.map(run_range, accumulators, ranges))
    for partial in done[1:]:
        done[0].merge(partial)
    return done[0].finalize()


def streaming_prediction_differences(
    spec: ModelClassSpec,
    theta_ref: np.ndarray,
    Thetas: np.ndarray,
    dataset: "Dataset | BlockSource",
    config: StreamingConfig | None = None,
) -> np.ndarray:
    """Sharded equivalent of :meth:`ModelClassSpec.prediction_differences`.

    Agrees with the materialised batched path to floating-point accuracy
    (bitwise for the classification families, whose block statistics are
    integer counts) while keeping memory at O(k · block_rows).  ``dataset``
    may be an in-memory :class:`Dataset` or any :class:`BlockSource`
    (e.g. a memory-mapped :class:`~repro.data.store.ShardedDataset`).
    """
    config = config or DEFAULT_STREAMING_CONFIG
    return stream_accumulate(
        _StreamTask(
            spec=spec,
            kind="diff",
            Thetas_a=np.asarray(theta_ref, dtype=np.float64),
            Thetas_b=np.asarray(Thetas, dtype=np.float64),
            source=dataset,
        ),
        config,
    )


def streaming_pairwise_prediction_differences(
    spec: ModelClassSpec,
    Thetas_a: np.ndarray,
    Thetas_b: np.ndarray,
    dataset: "Dataset | BlockSource",
    config: StreamingConfig | None = None,
) -> np.ndarray:
    """Sharded equivalent of :meth:`ModelClassSpec.pairwise_prediction_differences`."""
    config = config or DEFAULT_STREAMING_CONFIG
    return stream_accumulate(
        _StreamTask(
            spec=spec,
            kind="pairwise",
            Thetas_a=np.asarray(Thetas_a, dtype=np.float64),
            Thetas_b=np.asarray(Thetas_b, dtype=np.float64),
            source=dataset,
        ),
        config,
    )


def streaming_fanout_pairwise_prediction_differences(
    spec: ModelClassSpec,
    segments: "list[tuple[np.ndarray, np.ndarray]]",
    dataset: "Dataset | BlockSource",
    config: StreamingConfig | None = None,
) -> list[np.ndarray]:
    """Evaluate several independent pairwise-diff segments in one pass.

    ``segments`` is a list of ``(Thetas_a, Thetas_b)`` parameter-batch
    pairs — in the sample-size search, one k-pair segment per candidate
    size, possibly pooled across *many concurrent callers*.  The holdout is
    swept exactly once (one :func:`streaming_pass_count` tick) and every
    block is folded into each segment's own accumulator, so the per-segment
    results are bitwise identical to running
    :func:`streaming_pairwise_prediction_differences` per segment — same
    per-segment GEMM shapes, same block order, same merge order — while the
    data-movement cost is shared.  Returns one difference vector per
    segment, in segment order.
    """
    config = config or DEFAULT_STREAMING_CONFIG
    tasks = tuple(
        _StreamTask(
            spec=spec,
            kind="pairwise",
            Thetas_a=np.asarray(thetas_a, dtype=np.float64),
            Thetas_b=np.asarray(thetas_b, dtype=np.float64),
            source=dataset,
        )
        for thetas_a, thetas_b in segments
    )
    if not tasks:
        return []
    results = stream_accumulate(_FanoutStreamTask(tasks=tasks), config)
    return [np.asarray(result, dtype=np.float64) for result in results]
