"""Evaluation metrics used by the experiment harness.

Two families of metrics appear in the paper's evaluation:

* *model agreement* — how often the approximate model makes the same
  prediction as the full model (this is ``1 − v(m_n)`` and is what the
  "actual accuracy" columns of Table 5 report);
* *generalisation error* — the error of a model on unseen labelled data
  (Figure 8b), which Lemma 1 relates to the agreement guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.evaluation.streaming import StreamingConfig, streaming_prediction_differences
from repro.exceptions import DataError
from repro.models.base import ModelClassSpec, TrainedModel


def classification_accuracy(model: TrainedModel, dataset: Dataset) -> float:
    """Fraction of correctly classified rows."""
    if dataset.y is None:
        raise DataError("classification accuracy needs labels")
    predictions = model.predict(dataset.X)
    return float(np.mean(predictions == dataset.y))


def generalization_error(model: TrainedModel, dataset: Dataset) -> float:
    """Misclassification rate on a labelled test set (Figure 8b metric)."""
    return 1.0 - classification_accuracy(model, dataset)


def regression_r2(model: TrainedModel, dataset: Dataset) -> float:
    """Coefficient of determination R² of a regression model."""
    if dataset.y is None:
        raise DataError("R² needs labels")
    predictions = model.predict(dataset.X)
    residual = float(np.mean((predictions - dataset.y) ** 2))
    variance = float(np.var(dataset.y))
    if variance == 0:
        return 0.0
    return 1.0 - residual / variance


def model_agreement(
    spec: ModelClassSpec,
    theta_approx: np.ndarray,
    theta_full: np.ndarray,
    dataset: Dataset,
    streaming: StreamingConfig | None = None,
) -> float:
    """The *actual accuracy* ``1 − v`` between an approximate and a full model.

    By default this is routed through the batched diff path so that
    repeated comparisons against the same full model (the common
    benchmark-harness pattern) reuse the cached full-model predictions;
    pass a ``streaming`` config for O(k · block) memory on holdouts too
    large to materialise.
    """
    return float(model_agreements(spec, [theta_approx], theta_full, dataset, streaming)[0])


def model_agreements(
    spec: ModelClassSpec,
    Thetas_approx: np.ndarray,
    theta_full: np.ndarray,
    dataset: Dataset,
    streaming: StreamingConfig | None = None,
) -> np.ndarray:
    """Batched *actual accuracy*: ``1 − v`` for a stack of approximate models.

    All model-difference metrics in the library are symmetric, so the full
    model serves as the reference θ of the batched diff.  Without a
    ``streaming`` config the materialised batched path is used — its
    reference-prediction memo makes repeated sweeps against one full model
    cheap; with one, the evaluation is sharded through the streaming engine
    (O(k · block) memory, no cross-call memo).
    """
    Thetas_approx = np.asarray(Thetas_approx, dtype=np.float64)
    if streaming is None:
        differences = np.asarray(
            spec.prediction_differences(theta_full, Thetas_approx, dataset),
            dtype=np.float64,
        )
    else:
        differences = np.asarray(
            streaming_prediction_differences(
                spec, theta_full, Thetas_approx, dataset, config=streaming
            ),
            dtype=np.float64,
        )
    return 1.0 - differences
