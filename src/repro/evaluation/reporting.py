"""Plain-text reporting helpers for the benchmark harness.

The benchmarks print rows in the same shape as the paper's raw-data tables
(Appendix D); these helpers keep the formatting in one place.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """q-th percentile (0-100) of a sequence of floats."""
    return float(np.percentile(np.asarray(list(values), dtype=np.float64), q))


def summarize(values: Sequence[float]) -> dict:
    """Mean and 5th/95th percentiles, matching the Table 5 columns."""
    array = np.asarray(list(values), dtype=np.float64)
    return {
        "mean": float(array.mean()),
        "p5": float(np.percentile(array, 5)),
        "p95": float(np.percentile(array, 95)),
    }


def format_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None) -> str:
    """Render rows of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    lines = [header, separator]
    for cells in rendered:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)
