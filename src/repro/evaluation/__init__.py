"""Evaluation harness: metrics, experiment runners and plain-text reporting.

These utilities are shared by the benchmark modules (one per figure/table of
the paper) and by the examples.  They keep the benchmarks thin: each bench
mostly wires a workload to :func:`repro.evaluation.experiments.run_accuracy_sweep`
or a sibling runner and prints the resulting rows.
"""

from repro.evaluation.metrics import (
    classification_accuracy,
    generalization_error,
    regression_r2,
    model_agreement,
    model_agreements,
)
from repro.evaluation.experiments import (
    SweepRecord,
    run_accuracy_sweep,
    run_baseline_comparison,
    measure_full_training,
)
from repro.evaluation.reporting import format_table, percentile, summarize

__all__ = [
    "classification_accuracy",
    "generalization_error",
    "regression_r2",
    "model_agreement",
    "model_agreements",
    "SweepRecord",
    "run_accuracy_sweep",
    "run_baseline_comparison",
    "measure_full_training",
    "format_table",
    "percentile",
    "summarize",
]
