"""Evaluation harness: metrics, streaming diff engine, experiments, reporting.

These utilities are shared by the benchmark modules (one per figure/table of
the paper) and by the examples.  They keep the benchmarks thin: each bench
mostly wires a workload to :func:`repro.evaluation.experiments.run_accuracy_sweep`
or a sibling runner and prints the resulting rows.

Submodules are loaded lazily (PEP 562): the core estimators import
:mod:`repro.evaluation.streaming`, and an eager ``experiments`` import here
would close an import cycle back through :mod:`repro.core.coordinator`.
Lazy loading keeps ``from repro.evaluation import run_accuracy_sweep``
working while letting the streaming engine sit beneath the core layer.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "classification_accuracy": "repro.evaluation.metrics",
    "generalization_error": "repro.evaluation.metrics",
    "regression_r2": "repro.evaluation.metrics",
    "model_agreement": "repro.evaluation.metrics",
    "model_agreements": "repro.evaluation.metrics",
    "StreamingConfig": "repro.evaluation.streaming",
    "iter_holdout_blocks": "repro.evaluation.streaming",
    "streaming_prediction_differences": "repro.evaluation.streaming",
    "streaming_pairwise_prediction_differences": "repro.evaluation.streaming",
    "streaming_fanout_pairwise_prediction_differences": "repro.evaluation.streaming",
    "streaming_pass_count": "repro.evaluation.streaming",
    "SweepRecord": "repro.evaluation.experiments",
    "run_accuracy_sweep": "repro.evaluation.experiments",
    "run_baseline_comparison": "repro.evaluation.experiments",
    "measure_full_training": "repro.evaluation.experiments",
    "format_table": "repro.evaluation.reporting",
    "percentile": "repro.evaluation.reporting",
    "summarize": "repro.evaluation.reporting",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str) -> object:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
