"""Global defaults for the BlinkML reproduction.

The constants below mirror the defaults mentioned in the paper:

* ``DEFAULT_INITIAL_SAMPLE_SIZE`` — the size n0 of the initial training set
  (Section 2.3, "10K by default").
* ``DEFAULT_NUM_PARAMETER_SAMPLES`` — the number k of parameter samples used
  by the Monte-Carlo estimate in Equation (5) / Lemma 2.
* ``DEFAULT_CONFIDENCE_SLACK`` — the 0.95 constant appearing in Lemma 2.
* ``DEFAULT_FINITE_DIFFERENCE_EPS`` — the epsilon used by the
  InverseGradients statistics method (Section 3.4, "1e-6 by default").

They can be overridden per call; they exist so that every component in the
system agrees on the same defaults without hidden magic numbers.
"""

from __future__ import annotations

DEFAULT_INITIAL_SAMPLE_SIZE = 10_000
DEFAULT_NUM_PARAMETER_SAMPLES = 128
DEFAULT_CONFIDENCE_SLACK = 0.95
DEFAULT_FINITE_DIFFERENCE_EPS = 1e-6
DEFAULT_HOLDOUT_FRACTION = 0.1
DEFAULT_TEST_FRACTION = 0.2
DEFAULT_RANDOM_SEED = 0

# Optimiser defaults.  The paper uses BFGS for d < 100 and L-BFGS otherwise
# (Section 5.1); the coordinator applies the same switch.
BFGS_DIMENSION_THRESHOLD = 100
DEFAULT_MAX_ITERATIONS = 500
DEFAULT_GRADIENT_TOLERANCE = 1e-6
DEFAULT_LBFGS_MEMORY = 10
