"""Global defaults for the BlinkML reproduction.

The constants below mirror the defaults mentioned in the paper:

* ``DEFAULT_INITIAL_SAMPLE_SIZE`` — the size n0 of the initial training set
  (Section 2.3, "10K by default").
* ``DEFAULT_NUM_PARAMETER_SAMPLES`` — the number k of parameter samples used
  by the Monte-Carlo estimate in Equation (5) / Lemma 2.
* ``DEFAULT_CONFIDENCE_SLACK`` — the 0.95 constant appearing in Lemma 2.
* ``DEFAULT_FINITE_DIFFERENCE_EPS`` — the epsilon used by the
  InverseGradients statistics method (Section 3.4, "1e-6 by default").

They can be overridden per call; they exist so that every component in the
system agrees on the same defaults without hidden magic numbers.
"""

from __future__ import annotations

import os

from repro.exceptions import ContractError


def _env_int(name: str, default: int, minimum: int = 0) -> int:
    """Integer default overridable via an environment variable.

    Lets CI and deployments retune concurrency/cache knobs (e.g.
    ``DEFAULT_STREAMING_WORKERS=4`` for the threaded-stress job) without
    code changes.  Invalid values — non-integers or anything below
    ``minimum`` — fall back to the built-in default rather than failing
    import.  (Unbounded caches are spelled ``None`` and only per-session
    constructor arguments can express that, not an env var.)
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value >= minimum else default

def _env_float(
    name: str, default: float, minimum: float = 0.0, maximum: float | None = None
) -> float:
    """Float default overridable via an environment variable.

    Same philosophy as :func:`_env_int`: invalid values — non-numbers,
    anything below ``minimum`` or (when given) above ``maximum`` — fall
    back to the built-in default rather than failing import.  ``maximum``
    exists for the fraction-valued knobs (confidence, δ, split fractions)
    whose whole valid range is an interval.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    if value < minimum:
        return default
    if maximum is not None and value > maximum:
        return default
    return value


def _env_str(name: str, default: str) -> str:
    """Free-form string default overridable via an environment variable.

    Unlike :func:`_env_choice` the value space is open (filesystem paths,
    directory names), so the only normalisation is whitespace stripping.
    An empty string is meaningful — it spells "feature disabled" for the
    warm-cache directory knob — and passes through unchanged.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip()


def _env_choice(name: str, default: str, choices: tuple[str, ...]) -> str:
    """String default overridable via an environment variable.

    The value must be one of ``choices``; anything else falls back to the
    built-in default rather than failing import (same philosophy as
    :func:`_env_int`).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    raw = raw.strip().lower()
    return raw if raw in choices else default


# Paper-default statistical knobs.  Like every other DEFAULT_* below they
# are env-overridable (same-named variables), so experiments can retune the
# Monte-Carlo budget or the initial-sample size without code changes; the
# bounds mirror each knob's valid range, and out-of-range values fall back
# to the built-in default rather than failing import.
DEFAULT_INITIAL_SAMPLE_SIZE = _env_int("DEFAULT_INITIAL_SAMPLE_SIZE", 10_000, minimum=1)
DEFAULT_NUM_PARAMETER_SAMPLES = _env_int(
    "DEFAULT_NUM_PARAMETER_SAMPLES", 128, minimum=2
)
DEFAULT_CONFIDENCE_SLACK = _env_float(
    "DEFAULT_CONFIDENCE_SLACK", 0.95, minimum=0.0, maximum=1.0
)
DEFAULT_FINITE_DIFFERENCE_EPS = _env_float("DEFAULT_FINITE_DIFFERENCE_EPS", 1e-6)
DEFAULT_HOLDOUT_FRACTION = _env_float(
    "DEFAULT_HOLDOUT_FRACTION", 0.1, minimum=0.0, maximum=1.0
)
DEFAULT_TEST_FRACTION = _env_float(
    "DEFAULT_TEST_FRACTION", 0.2, minimum=0.0, maximum=1.0
)
DEFAULT_RANDOM_SEED = _env_int("DEFAULT_RANDOM_SEED", 0, minimum=0)

# The contract's default violation probability δ (the paper's experiments
# use 0.05 throughout).  Every place a default δ appears — the contract
# dataclass, ``BlinkML.train_with_accuracy``, the sklearn wrappers, the
# experiment runners — reads this constant.  Env-overridable; values
# outside (0, 1) fall back (the boundary values would fail
# :func:`validate_delta` at contract-construction time anyway).
DEFAULT_DELTA = _env_float("DEFAULT_DELTA", 0.05, minimum=0.0, maximum=1.0)

# Streaming sharded holdout evaluation (repro.evaluation.streaming).  The
# holdout is processed in row blocks of this size so the per-candidate
# prediction block stays O(k · block) instead of O(k · n_holdout);
# 8192 rows × 128 candidates × 8 bytes ≈ 8 MB per in-flight block.
# Env-overridable.
DEFAULT_HOLDOUT_BLOCK_ROWS = _env_int("DEFAULT_HOLDOUT_BLOCK_ROWS", 8_192, minimum=1)
# 0 or 1 means serial block processing; larger values fan contiguous block
# ranges out across that many threads (NumPy releases the GIL inside the
# per-block GEMMs).  Overridable via the DEFAULT_STREAMING_WORKERS
# environment variable (the CI threaded-stress job sets 4).
DEFAULT_STREAMING_WORKERS = _env_int("DEFAULT_STREAMING_WORKERS", 0)
# Which executor the streamed block fan-out uses when n_workers > 1:
# "threads" (default; NumPy releases the GIL inside the per-block GEMMs) or
# "processes" (a process pool for GIL-bound custom model specs; pairs best
# with a ShardedDataset holdout, whose workers re-open their own memory
# maps instead of copying the data).  Env-overridable.
DEFAULT_STREAMING_BACKEND = _env_choice(
    "DEFAULT_STREAMING_BACKEND", "threads", ("threads", "processes")
)
# Streaming statistics tier (repro.core.statistics).  Rows per gradient
# block when H/J summaries are folded incrementally: the resident set is one
# (block_rows, d) per-example gradient block plus a (d, d) triangular
# factor, never the full N×d matrix.  Kept separate from
# DEFAULT_HOLDOUT_BLOCK_ROWS because statistics blocks also bound the QR
# work per fold, not just prediction GEMM size.  Env-overridable.
DEFAULT_STATS_BLOCK_ROWS = _env_int("DEFAULT_STATS_BLOCK_ROWS", 8_192, minimum=1)

# Out-of-core shard store (repro.data.store).  Rows per .npy shard: the
# write path buffers at most one shard, the streaming read path memory-maps
# one shard at a time, and block bounds snap to shard boundaries — so this
# also upper-bounds the holdout block size a sharded evaluation can use
# without crossing shards.  65536 rows x 64 features x 8 bytes = 32 MB per
# feature shard at the default, a comfortable unit for both local disks and
# object stores.  Env-overridable.
DEFAULT_STORE_SHARD_ROWS = _env_int("DEFAULT_STORE_SHARD_ROWS", 65_536, minimum=1)

# Bounds for the EstimationSession caches (repro.core.caching.LRUCache).
# A serving deployment answering contracts for many (θ, n) pairs must not
# grow without bound: each sorted-difference vector holds k float64s
# (k = DEFAULT_NUM_PARAMETER_SAMPLES, so ~1 KB at the default k=128), and
# cached models hold a d-dimensional θ.  Entry bounds are the primary knob;
# the byte bound is a belt-and-braces cap for unusually large k or d.
# All overridable via same-named environment variables; session constructors
# accept per-instance overrides (None = unbounded).
DEFAULT_SESSION_DIFF_CACHE_ENTRIES = _env_int(
    "DEFAULT_SESSION_DIFF_CACHE_ENTRIES", 512, minimum=1
)
DEFAULT_SESSION_DIFF_CACHE_BYTES = _env_int(
    "DEFAULT_SESSION_DIFF_CACHE_BYTES", 32 * 1024 * 1024, minimum=1
)
DEFAULT_SESSION_MODEL_CACHE_ENTRIES = _env_int(
    "DEFAULT_SESSION_MODEL_CACHE_ENTRIES", 64, minimum=1
)
DEFAULT_SESSION_SIZE_CACHE_ENTRIES = _env_int(
    "DEFAULT_SESSION_SIZE_CACHE_ENTRIES", 1024, minimum=1
)

# Cross-session serving registry (repro.core.registry.SessionRegistry).
# A serving fleet keeps one EstimationSession per (model, dataset) pair;
# the registry bounds the *fleet*: at most DEFAULT_REGISTRY_MAX_SESSIONS
# live sessions, whose cache bytes collectively stay within
# DEFAULT_REGISTRY_CACHE_BYTES (the pool is divided evenly among member
# sessions and rebalanced as the fleet grows/shrinks; whole idle sessions
# are evicted LRU-first when either bound would be exceeded).
# DEFAULT_REGISTRY_MIN_SESSION_BYTES is the smallest useful per-session
# share — rather than splitting the pool thinner than this, the registry
# evicts the most idle session.  All env-overridable like the knobs above.
DEFAULT_REGISTRY_MAX_SESSIONS = _env_int("DEFAULT_REGISTRY_MAX_SESSIONS", 16, minimum=1)
DEFAULT_REGISTRY_CACHE_BYTES = _env_int(
    "DEFAULT_REGISTRY_CACHE_BYTES", 256 * 1024 * 1024, minimum=1
)
DEFAULT_REGISTRY_MIN_SESSION_BYTES = _env_int(
    "DEFAULT_REGISTRY_MIN_SESSION_BYTES", 1024 * 1024, minimum=1
)

# Cross-process warm cache tier (repro.data.store.warm_cache).  When the
# directory knob is non-empty, sessions persist their sorted-difference
# vectors and size-search results as digest-keyed .npz entries under it,
# so a restarted process — or a co-located serving process sharing the
# directory — answers a repeat contract with zero streamed passes.  The
# empty default disables the tier.  Deployments may also set the runtime
# alias REPRO_WARM_CACHE_DIR (read at session construction by
# repro.data.store.warm_cache.default_warm_cache_dir, so tests and CI can
# retarget the directory without re-importing this module).  MAX_BYTES
# bounds the directory via mtime-GC after each write; WRITE_BEHIND != 0
# publishes entries from a background thread (0 = synchronous writes).
DEFAULT_WARM_CACHE_DIR = _env_str("DEFAULT_WARM_CACHE_DIR", "")
DEFAULT_WARM_CACHE_MAX_BYTES = _env_int(
    "DEFAULT_WARM_CACHE_MAX_BYTES", 1024 * 1024 * 1024, minimum=1
)
DEFAULT_WARM_CACHE_WRITE_BEHIND = _env_int("DEFAULT_WARM_CACHE_WRITE_BEHIND", 1)

# How many candidate sample sizes the sample-size search evaluates per
# stacked Monte-Carlo pass (ROADMAP "batched two-stage probes").  1 keeps
# the classic bisection; the coordinator/session default trades a little
# extra compute per pass for ~log_{b+1} instead of log_2 passes.
# Env-overridable like the other serving knobs; values below 1 fall back
# to the default (the session/coordinator boundary rejects them outright).
DEFAULT_SIZE_SEARCH_PROBE_BATCH = _env_int(
    "DEFAULT_SIZE_SEARCH_PROBE_BATCH", 3, minimum=1
)

# Request-coalescing serving tier (repro.serving).  A ContractBatcher
# collects concurrent answer()/train_to() requests against one session for
# a short window and dispatches them as one fused evaluation — identical
# (ε, δ) contracts become single-flight followers and distinct contracts
# share each search round's streamed holdout pass.  The window trades a
# couple of milliseconds of added latency for cross-caller GEMM sharing;
# the batch cap bounds how much work one dispatch can aggregate; the queue
# cap is the backpressure bound — submissions beyond it are load-shed with
# ServingOverloadError.  All env-overridable.
DEFAULT_COALESCE_WINDOW_MS = _env_float("DEFAULT_COALESCE_WINDOW_MS", 2.0, minimum=0.0)
DEFAULT_COALESCE_MAX_BATCH = _env_int("DEFAULT_COALESCE_MAX_BATCH", 16, minimum=1)
DEFAULT_COALESCE_MAX_QUEUE = _env_int("DEFAULT_COALESCE_MAX_QUEUE", 1024, minimum=1)

# CoalescingService housekeeping (repro.serving.service): the background
# thread period, how long a session may idle before the housekeeping pass
# evicts it from the registry, the minimum relative share drift below which
# a periodic traffic-weighted rebalance() is skipped (hysteresis — avoids
# cache-cap churn for tiny share movements), and the fraction of the
# registry byte pool above which admission control tightens (the "budget
# is hot" threshold for earlier load-shedding).  All env-overridable.
DEFAULT_SERVICE_HOUSEKEEPING_SECONDS = _env_float(
    "DEFAULT_SERVICE_HOUSEKEEPING_SECONDS", 5.0, minimum=0.01
)
DEFAULT_SERVICE_IDLE_EVICT_SECONDS = _env_float(
    "DEFAULT_SERVICE_IDLE_EVICT_SECONDS", 900.0, minimum=0.0
)
DEFAULT_SERVICE_REBALANCE_DRIFT = _env_float(
    "DEFAULT_SERVICE_REBALANCE_DRIFT", 0.10, minimum=0.0
)
DEFAULT_SERVICE_HOT_BYTES_FRACTION = _env_float(
    "DEFAULT_SERVICE_HOT_BYTES_FRACTION", 0.9, minimum=0.0
)


# Observability tier (repro.obs).  ENABLED gates the *extra* telemetry —
# tracing spans, latency histograms, per-pass block/byte metrics — on the
# hot paths; the metrics registry itself (and the streamed-pass counter
# behind streaming_pass_count()) is always live, so scrapes and pass
# accounting work with the flag off and enabling it can never change a
# result, only record more about how it was produced.  Deployments may
# also flip the runtime alias REPRO_OBS_ENABLED (read per call by
# repro.obs.obs_enabled, so tests and CI can toggle telemetry without
# re-importing this module).  SPAN_BUFFER bounds the tracer's ring buffer
# of completed spans — the oldest spans are dropped first, so a
# long-running server's trace memory stays O(buffer), not O(requests).
DEFAULT_OBS_ENABLED = _env_int("DEFAULT_OBS_ENABLED", 0)
DEFAULT_OBS_SPAN_BUFFER = _env_int("DEFAULT_OBS_SPAN_BUFFER", 4096, minimum=1)


def validate_delta(delta: float) -> float:
    """Validate a contract violation probability ``0 < δ < 1``."""
    if not 0.0 < delta < 1.0:
        raise ContractError(f"delta must lie in (0, 1), got {delta}")
    return float(delta)

# Optimiser defaults.  The paper uses BFGS for d < 100 and L-BFGS otherwise
# (Section 5.1); the coordinator applies the same switch.  The DEFAULT_*
# knobs are env-overridable like everything above; the dimension threshold
# is a paper constant, not a deployment knob, and stays fixed.
BFGS_DIMENSION_THRESHOLD = 100
DEFAULT_MAX_ITERATIONS = _env_int("DEFAULT_MAX_ITERATIONS", 500, minimum=1)
DEFAULT_GRADIENT_TOLERANCE = _env_float("DEFAULT_GRADIENT_TOLERANCE", 1e-6)
DEFAULT_LBFGS_MEMORY = _env_int("DEFAULT_LBFGS_MEMORY", 10, minimum=1)
