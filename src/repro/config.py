"""Global defaults for the BlinkML reproduction.

The constants below mirror the defaults mentioned in the paper:

* ``DEFAULT_INITIAL_SAMPLE_SIZE`` — the size n0 of the initial training set
  (Section 2.3, "10K by default").
* ``DEFAULT_NUM_PARAMETER_SAMPLES`` — the number k of parameter samples used
  by the Monte-Carlo estimate in Equation (5) / Lemma 2.
* ``DEFAULT_CONFIDENCE_SLACK`` — the 0.95 constant appearing in Lemma 2.
* ``DEFAULT_FINITE_DIFFERENCE_EPS`` — the epsilon used by the
  InverseGradients statistics method (Section 3.4, "1e-6 by default").

They can be overridden per call; they exist so that every component in the
system agrees on the same defaults without hidden magic numbers.
"""

from __future__ import annotations

from repro.exceptions import ContractError

DEFAULT_INITIAL_SAMPLE_SIZE = 10_000
DEFAULT_NUM_PARAMETER_SAMPLES = 128
DEFAULT_CONFIDENCE_SLACK = 0.95
DEFAULT_FINITE_DIFFERENCE_EPS = 1e-6
DEFAULT_HOLDOUT_FRACTION = 0.1
DEFAULT_TEST_FRACTION = 0.2
DEFAULT_RANDOM_SEED = 0

# The contract's default violation probability δ (the paper's experiments
# use 0.05 throughout).  Every place a default δ appears — the contract
# dataclass, ``BlinkML.train_with_accuracy``, the sklearn wrappers, the
# experiment runners — reads this constant.
DEFAULT_DELTA = 0.05

# Streaming sharded holdout evaluation (repro.evaluation.streaming).  The
# holdout is processed in row blocks of this size so the per-candidate
# prediction block stays O(k · block) instead of O(k · n_holdout);
# 8192 rows × 128 candidates × 8 bytes ≈ 8 MB per in-flight block.
DEFAULT_HOLDOUT_BLOCK_ROWS = 8_192
# 0 or 1 means serial block processing; larger values fan contiguous block
# ranges out across that many threads (NumPy releases the GIL inside the
# per-block GEMMs).
DEFAULT_STREAMING_WORKERS = 0

# How many candidate sample sizes the sample-size search evaluates per
# stacked Monte-Carlo pass (ROADMAP "batched two-stage probes").  1 keeps
# the classic bisection; the coordinator/session default trades a little
# extra compute per pass for ~log_{b+1} instead of log_2 passes.
DEFAULT_SIZE_SEARCH_PROBE_BATCH = 3


def validate_delta(delta: float) -> float:
    """Validate a contract violation probability ``0 < δ < 1``."""
    if not 0.0 < delta < 1.0:
        raise ContractError(f"delta must lie in (0, 1), got {delta}")
    return float(delta)

# Optimiser defaults.  The paper uses BFGS for d < 100 and L-BFGS otherwise
# (Section 5.1); the coordinator applies the same switch.
BFGS_DIMENSION_THRESHOLD = 100
DEFAULT_MAX_ITERATIONS = 500
DEFAULT_GRADIENT_TOLERANCE = 1e-6
DEFAULT_LBFGS_MEMORY = 10
