"""Nested tracing spans with contextvar propagation and a bounded buffer.

A :class:`Tracer` issues :class:`Span` objects through a ``with`` context
manager; the *current* span is carried in a :class:`contextvars.ContextVar`,
so a span opened inside another span's scope becomes its child
automatically — across ordinary call chains and across asyncio tasks,
which inherit the creating task's context (the
:class:`~repro.serving.service.CoalescingService` entry points therefore
trace correctly under the event loop).  Thread pools do **not** inherit
context (``ThreadPoolExecutor`` workers run in their own contexts), so
cross-thread causality is explicit: capture :meth:`Tracer.current_span`
before submitting, then either pass it as ``parent=`` or re-enter it in
the worker with :meth:`Tracer.activate` — exactly what the serving tier
does around its executor hops.

Determinism: the clock is injectable (tests drive a fake monotonic clock
and assert exact durations) and span/trace ids come from a plain counter,
not from randomness — a traced run is reproducible like every other part
of this codebase.  Completed spans land in a bounded ring buffer
(``DEFAULT_OBS_SPAN_BUFFER`` entries, oldest dropped first) so a
long-running server's trace memory is O(buffer), never O(requests
served).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.config import DEFAULT_OBS_SPAN_BUFFER
from repro.exceptions import ObservabilityError


@dataclass
class Span:
    """One timed, attributed operation in a trace tree.

    ``trace_id`` groups a whole request tree (a root span's trace id is
    its own span id; children inherit); ``parent_id`` is ``None`` for
    roots.  ``end`` stays ``None`` while the span is open.  Attributes are
    free-form key/values recorded at open time or via
    :meth:`set_attribute` while the span is current — a span is owned by
    the context that opened it, so mutation needs no lock.
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between start and end; raises while the span is open."""
        if self.end is None:
            raise ObservabilityError(f"span {self.name!r} is not finished")
        return self.end - self.start

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[str(key)] = value


#: sentinel distinguishing "no parent argument" from an explicit ``None``
#: (which forces a new root even inside another span's scope).
_INHERIT_PARENT = Span(
    name="<inherit>", trace_id=0, span_id=0, parent_id=None, start=0.0
)


class Tracer:
    """Produces spans, tracks the current one, buffers the finished ones.

    Parameters
    ----------
    clock:
        Zero-argument monotonic time source (default
        :func:`time.monotonic`).  Tests inject a fake for exact-duration
        assertions.
    buffer_size:
        Ring-buffer bound on completed spans (default
        ``DEFAULT_OBS_SPAN_BUFFER``); the oldest are dropped first.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        buffer_size: int | None = None,
    ) -> None:
        size = DEFAULT_OBS_SPAN_BUFFER if buffer_size is None else int(buffer_size)
        if size < 1:
            raise ObservabilityError(f"tracer: buffer_size must be >= 1, got {size}")
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=size)  # guarded-by: _lock
        self._next_id = 0  # guarded-by: _lock
        # Per-tracer so a test tracer's current span never leaks into the
        # process-global tracer's context (and vice versa).
        self._current: ContextVar[Span | None] = ContextVar(
            f"repro-obs-span-{id(self)}", default=None
        )

    def _new_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def current_span(self) -> Span | None:
        """The innermost open span in this context (``None`` outside any)."""
        return self._current.get()

    @contextmanager
    def span(
        self,
        name: str,
        parent: Span | None = _INHERIT_PARENT,
        **attributes: object,
    ) -> Iterator[Span]:
        """Open a child of the current span (or of ``parent`` when given).

        ``parent=None`` forces a new root; omitting it inherits the
        context's current span.  The span becomes current for the dynamic
        extent of the ``with`` block and lands in the finished buffer on
        exit (including on exceptions, which are recorded under an
        ``"error"`` attribute).
        """
        effective_parent = (
            self.current_span() if parent is _INHERIT_PARENT else parent
        )
        span_id = self._new_id()
        span = Span(
            name=str(name),
            trace_id=(
                span_id if effective_parent is None else effective_parent.trace_id
            ),
            span_id=span_id,
            parent_id=(
                None if effective_parent is None else effective_parent.span_id
            ),
            start=self._clock(),
            attributes=dict(attributes),
        )
        token = self._current.set(span)
        try:
            yield span
        except BaseException as exc:
            span.set_attribute("error", type(exc).__name__)
            raise
        finally:
            self._current.reset(token)
            span.end = self._clock()
            with self._lock:
                self._finished.append(span)

    @contextmanager
    def activate(self, span: Span | None) -> Iterator[None]:
        """Make ``span`` current for a block — the cross-thread handoff.

        Capture :meth:`current_span` before submitting work to an
        executor, then wrap the worker body in ``activate(captured)`` so
        spans it opens become children of the submitting request instead
        of disconnected roots.
        """
        token = self._current.set(span)
        try:
            yield
        finally:
            self._current.reset(token)

    def finished_spans(self) -> list[Span]:
        """Completed spans, oldest first (bounded by the ring buffer)."""
        with self._lock:
            return list(self._finished)

    def clear(self) -> None:
        """Drop every buffered finished span."""
        with self._lock:
            self._finished.clear()
