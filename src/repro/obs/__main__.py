"""``python -m repro.obs`` — dump metrics as Prometheus text or JSON.

Without arguments, scrapes this process's global registry (useful from a
REPL or an embedded runner); given a path to a JSON snapshot previously
saved with :func:`repro.obs.write_json_snapshot`, re-renders that
snapshot instead — so archived per-run snapshots stay inspectable with
the same tool that produced them.

    python -m repro.obs                       # live registry, Prometheus text
    python -m repro.obs --format json         # live registry, JSON
    python -m repro.obs run.json              # saved snapshot, Prometheus text
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.exceptions import ObservabilityError
from repro.obs import (
    get_metrics,
    load_json_snapshot,
    render_json,
    render_prometheus,
)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description=(
            "Dump the process's metrics registry, or re-render a saved "
            "JSON metrics snapshot."
        ),
    )
    parser.add_argument(
        "snapshot",
        nargs="?",
        default=None,
        help="path to a JSON snapshot (default: scrape the live registry)",
    )
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    args = parser.parse_args(argv)
    try:
        if args.snapshot is None:
            snapshot = get_metrics().snapshot()
        else:
            snapshot = load_json_snapshot(args.snapshot)
    except (OSError, ValueError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    rendered = (
        render_json(snapshot)
        if args.format == "json"
        else render_prometheus(snapshot)
    )
    sys.stdout.write(rendered if rendered.endswith("\n") else rendered + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
