"""Thread-safe metrics registry: counters, gauges, log-bucketed histograms.

The accounting substrate of the observability tier (see
``docs/observability.md``).  Three instrument kinds cover everything the
serving stack measures:

* :class:`Counter` — monotone sums (streamed passes, coalesced requests,
  size-search rounds);
* :class:`Gauge` — set-to-current values (cache bytes, fleet occupancy;
  also the bridge targets for the pre-existing stats snapshots);
* :class:`Histogram` — fixed-bucket latency distributions.  The buckets
  are *fixed at declaration* (default :data:`LATENCY_BUCKETS`, a
  log-spaced 100 µs → 100 s ladder) so independently collected snapshots
  are always bucket-compatible and merge exactly.

Every instrument is named, labelled and thread-safe: one lock per
instrument guards its label-keyed series map, so hot-path increments from
the streaming executor's worker threads never contend with unrelated
instruments.  :meth:`MetricsRegistry.snapshot` freezes the whole registry
into a :class:`MetricsSnapshot` — plain frozen dataclasses of tuples,
picklable by construction, so a process-backend worker can ship its
snapshot to the parent and :meth:`MetricsSnapshot.merge` folds the two
exactly the way the TSQR moment summaries merge: associatively,
bucket-by-bucket, with incompatible schemas rejected loudly
(:class:`~repro.exceptions.ObservabilityError`) instead of silently
misfolded.

Collectors (:meth:`MetricsRegistry.add_collector`) let pull-time bridges
publish externally owned counters — the serving tier registers one that
copies its :class:`~repro.core.registry.RegistryStats` roll-up into
gauges on every scrape, so one snapshot covers the fleet without the
fleet pushing on its request path.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import ObservabilityError

#: fixed log-spaced latency buckets (seconds): a 1-2.5-5 ladder from
#: 100 µs to 100 s.  Fixed — not per-declaration-tunable at call sites —
#: so every histogram snapshot in the system merges with every other.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")


def _validate_metric_name(name: str) -> str:
    if not _METRIC_NAME.fullmatch(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _validate_label_names(label_names: Iterable[str]) -> tuple[str, ...]:
    names = tuple(label_names)
    if len(set(names)) != len(names):
        raise ObservabilityError(f"duplicate label names in {names!r}")
    for label in names:
        if not _LABEL_NAME.fullmatch(label):
            raise ObservabilityError(f"invalid label name {label!r}")
    return names


# ----------------------------------------------------------------------
# Snapshot dataclasses (immutable, picklable, mergeable)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesValue:
    """One labelled counter/gauge series: its label values and its value."""

    labels: tuple[str, ...]
    value: float


@dataclass(frozen=True)
class HistogramValue:
    """One labelled histogram series.

    ``counts`` holds *per-bucket* (non-cumulative) observation counts, one
    per declared bucket bound plus a final overflow (+Inf) slot; the
    Prometheus renderer re-accumulates them into the cumulative ``le``
    form.  ``total`` is the sum of observed values, ``count`` the number
    of observations (== ``sum(counts)``).
    """

    labels: tuple[str, ...]
    counts: tuple[int, ...]
    total: float
    count: int


@dataclass(frozen=True)
class InstrumentSnapshot:
    """Frozen view of one instrument: schema plus every labelled series."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    label_names: tuple[str, ...]
    buckets: tuple[float, ...]  # empty for counters and gauges
    series: tuple[SeriesValue, ...] = ()
    histogram_series: tuple[HistogramValue, ...] = ()

    def value(self, **labels: str) -> float:
        """The scalar value of one series (0.0 when the series is absent)."""
        key = tuple(str(labels[name]) for name in self.label_names)
        for entry in self.series:
            if entry.labels == key:
                return entry.value
        return 0.0

    def total(self) -> float:
        """Sum over every labelled series (counters/gauges)."""
        return sum(entry.value for entry in self.series)

    def merge(self, other: "InstrumentSnapshot") -> "InstrumentSnapshot":
        """Fold two snapshots of the *same* instrument schema (additive).

        Counters and gauges sum per label set (gauges too: the merge
        exists for cross-process roll-ups — bytes, entries — where the
        fleet total is the sum of the workers' gauges).  Histograms add
        bucket-by-bucket, which is exact because buckets are part of the
        schema.  Any schema mismatch raises
        :class:`~repro.exceptions.ObservabilityError`.
        """
        if (
            self.name != other.name
            or self.kind != other.kind
            or self.label_names != other.label_names
            or self.buckets != other.buckets
        ):
            raise ObservabilityError(
                f"cannot merge incompatible instrument snapshots for "
                f"{self.name!r} / {other.name!r} (kind, labels and buckets "
                "must match)"
            )
        if self.kind == "histogram":
            merged_hist: dict[tuple[str, ...], HistogramValue] = {
                entry.labels: entry for entry in self.histogram_series
            }
            for entry in other.histogram_series:
                base = merged_hist.get(entry.labels)
                if base is None:
                    merged_hist[entry.labels] = entry
                    continue
                merged_hist[entry.labels] = HistogramValue(
                    labels=entry.labels,
                    counts=tuple(
                        a + b for a, b in zip(base.counts, entry.counts)
                    ),
                    total=base.total + entry.total,
                    count=base.count + entry.count,
                )
            return InstrumentSnapshot(
                name=self.name,
                kind=self.kind,
                help=self.help or other.help,
                label_names=self.label_names,
                buckets=self.buckets,
                histogram_series=tuple(
                    merged_hist[labels] for labels in sorted(merged_hist)
                ),
            )
        merged: dict[tuple[str, ...], float] = {
            entry.labels: entry.value for entry in self.series
        }
        for entry in other.series:
            merged[entry.labels] = merged.get(entry.labels, 0.0) + entry.value
        return InstrumentSnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help or other.help,
            label_names=self.label_names,
            buckets=self.buckets,
            series=tuple(
                SeriesValue(labels=labels, value=merged[labels])
                for labels in sorted(merged)
            ),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen view of a whole registry: every instrument, every series.

    Plain nested frozen dataclasses of tuples — picklable and hashable by
    construction — so snapshots cross process boundaries and
    :meth:`merge` folds any number of them associatively (worker
    snapshots merge like the statistics tier's shard summaries).
    """

    instruments: tuple[InstrumentSnapshot, ...]

    def get(self, name: str) -> InstrumentSnapshot | None:
        """The named instrument's snapshot, or ``None``."""
        for instrument in self.instruments:
            if instrument.name == name:
                return instrument
        return None

    def value(self, name: str, **labels: str) -> float:
        """One series' scalar value (0.0 when instrument/series is absent)."""
        instrument = self.get(name)
        return 0.0 if instrument is None else instrument.value(**labels)

    def total(self, name: str) -> float:
        """Sum of the named instrument over every label set (0.0 if absent)."""
        instrument = self.get(name)
        return 0.0 if instrument is None else instrument.total()

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Union by instrument name; shared names fold via their ``merge``."""
        merged: dict[str, InstrumentSnapshot] = {
            instrument.name: instrument for instrument in self.instruments
        }
        for instrument in other.instruments:
            base = merged.get(instrument.name)
            merged[instrument.name] = (
                instrument if base is None else base.merge(instrument)
            )
        return MetricsSnapshot(
            instruments=tuple(merged[name] for name in sorted(merged))
        )


# ----------------------------------------------------------------------
# Live instruments
# ----------------------------------------------------------------------
class _Instrument:
    """Shared machinery: name/label validation and the series-key mapping."""

    kind = ""

    def __init__(self, name: str, help_text: str, label_names: Iterable[str]):
        self.name = _validate_metric_name(name)
        self.help = str(help_text)
        self.label_names = _validate_label_names(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ObservabilityError(
                f"instrument {self.name!r} takes labels {self.label_names!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def snapshot(self) -> InstrumentSnapshot:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotone labelled sum; increments must be non-negative."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ):
        super().__init__(name, help_text, label_names)
        self._series: dict[tuple[str, ...], float] = {}  # guarded-by: _lock

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r}: negative increment {amount}"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._series.values())

    def snapshot(self) -> InstrumentSnapshot:
        with self._lock:
            series = tuple(
                SeriesValue(labels=labels, value=self._series[labels])
                for labels in sorted(self._series)
            )
        return InstrumentSnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help,
            label_names=self.label_names,
            buckets=(),
            series=series,
        )


class Gauge(_Instrument):
    """Set-to-current labelled value (may move in either direction)."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ):
        super().__init__(name, help_text, label_names)
        self._series: dict[tuple[str, ...], float] = {}  # guarded-by: _lock

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._series.values())

    def snapshot(self) -> InstrumentSnapshot:
        with self._lock:
            series = tuple(
                SeriesValue(labels=labels, value=self._series[labels])
                for labels in sorted(self._series)
            )
        return InstrumentSnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help,
            label_names=self.label_names,
            buckets=(),
            series=series,
        )


@dataclass
class _HistogramState:
    """Mutable per-series histogram state (bucket counts, sum, count)."""

    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0


class Histogram(_Instrument):
    """Fixed-bucket labelled distribution (Prometheus ``le`` semantics).

    An observation equal to a bucket bound lands *in* that bucket
    (inclusive upper bounds, matching Prometheus); observations above the
    last bound land in the implicit +Inf overflow slot.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {self.name!r}: empty buckets")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {self.name!r}: buckets must increase strictly"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramState] = {}  # guarded-by: _lock

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, float(value))
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = _HistogramState(counts=[0] * (len(self.buckets) + 1))
                self._series[key] = state
            state.counts[index] += 1
            state.total += float(value)
            state.count += 1

    def snapshot(self) -> InstrumentSnapshot:
        with self._lock:
            series = tuple(
                HistogramValue(
                    labels=labels,
                    counts=tuple(self._series[labels].counts),
                    total=self._series[labels].total,
                    count=self._series[labels].count,
                )
                for labels in sorted(self._series)
            )
        return InstrumentSnapshot(
            name=self.name,
            kind=self.kind,
            help=self.help,
            label_names=self.label_names,
            buckets=self.buckets,
            histogram_series=series,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Named instruments plus pull-time collectors, one scrape surface.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: a repeat
    declaration with the same schema returns the existing instrument
    (instrumented modules simply declare at import time); a conflicting
    redeclaration — different kind, labels or buckets — raises
    :class:`~repro.exceptions.ObservabilityError` instead of silently
    aliasing two meanings under one name.

    Collectors run at :meth:`snapshot` time, *outside* the registry lock,
    so a collector may freely read stats surfaces that take their own
    locks (the serving bridge walks the whole registry fleet).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}  # guarded-by: _lock
        self._collectors: list[Callable[[], None]] = []  # guarded-by: _lock

    def _get_or_create(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is None:
                self._instruments[instrument.name] = instrument
                return instrument
        if (
            existing.kind != instrument.kind
            or existing.label_names != instrument.label_names
            or getattr(existing, "buckets", ()) != getattr(instrument, "buckets", ())
        ):
            raise ObservabilityError(
                f"instrument {instrument.name!r} already declared as a "
                f"{existing.kind} with labels {existing.label_names!r}"
            )
        return existing

    def counter(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> Counter:
        instrument = self._get_or_create(Counter(name, help_text, label_names))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> Gauge:
        instrument = self._get_or_create(Gauge(name, help_text, label_names))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Iterable[str] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        instrument = self._get_or_create(
            Histogram(name, help_text, label_names, buckets)
        )
        assert isinstance(instrument, Histogram)
        return instrument

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a zero-argument callable run before every snapshot.

        Bridges push externally owned stats into gauges here, so the
        cost of walking a stats surface is paid per scrape, never per
        request.  Idempotent for the same callable.
        """
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def remove_collector(self, collector: Callable[[], None]) -> None:
        """Deregister a collector (no-op when it is not registered)."""
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    def collect(self) -> None:
        """Run every registered collector (outside the registry lock)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def snapshot(self, run_collectors: bool = True) -> MetricsSnapshot:
        """Freeze the registry (after running collectors, by default)."""
        if run_collectors:
            self.collect()
        with self._lock:
            instruments = [
                self._instruments[name] for name in sorted(self._instruments)
            ]
        return MetricsSnapshot(
            instruments=tuple(
                instrument.snapshot() for instrument in instruments
            )
        )
