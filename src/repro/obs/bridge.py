"""Bridge the pre-existing stats snapshots into the metrics registry.

PRs 1–9 grew five ad-hoc observability surfaces — per-cache
:class:`~repro.core.caching.CacheStats`, the coalescing tier's
``BatcherStats``, the warm tier's
:class:`~repro.data.store.warm_cache.WarmCacheStats`, the fleet's
:class:`~repro.core.registry.RegistryStats` and the global streamed-pass
counter.  The pass counter now *is* a registry counter
(:mod:`repro.evaluation.streaming`); this module folds the other four in
at scrape time, so one Prometheus/JSON export covers the whole stack.

Everything is published as gauges mirroring the snapshots' cumulative
counters: the snapshots own the truth (and their own locking), the
bridge just copies the latest values on each scrape — registered by
:class:`~repro.serving.service.CoalescingService` as a registry
collector, so the cost is per scrape, never per request.

The batcher snapshot is typed structurally (:class:`BatcherStatsLike`)
so this module never imports the serving package — the serving package
imports :mod:`repro.obs` for its own instrumentation, and a concrete
import here would close an import cycle.
"""

from __future__ import annotations

from typing import Protocol, cast

from repro.core.caching import CacheStats
from repro.core.registry import RegistryStats
from repro.data.store.warm_cache import WarmCacheStats
from repro.obs.metrics import MetricsRegistry


class BatcherStatsLike(Protocol):
    """The coalescing-counter surface the serving bridge reads.

    Matches :class:`~repro.serving.batcher.BatcherStats` structurally;
    kept as a protocol so :mod:`repro.obs` never imports
    :mod:`repro.serving` (which imports it back).
    """

    batches: int
    requests: int
    coalesced_requests: int
    answer_requests: int
    train_requests: int
    fused_passes: int
    serial_passes: int
    load_shed: int
    max_queue_depth: int
    window_slots: int
    queue_wait_seconds: float
    max_queue_wait_seconds: float

    @property
    def passes_saved(self) -> int: ...  # pragma: no cover - protocol


def bridge_cache_stats(
    metrics: MetricsRegistry, stats: CacheStats, session: str = ""
) -> None:
    """Publish one cache's counters as ``repro_cache_*`` gauges."""
    labels = {"cache": stats.name, "session": session}
    metrics.gauge(
        "repro_cache_hits", "Cache hits (from CacheStats).",
        ("cache", "session"),
    ).set(stats.hits, **labels)
    metrics.gauge(
        "repro_cache_misses", "Cache misses (from CacheStats).",
        ("cache", "session"),
    ).set(stats.misses, **labels)
    metrics.gauge(
        "repro_cache_evictions", "Cache evictions (from CacheStats).",
        ("cache", "session"),
    ).set(stats.evictions, **labels)
    metrics.gauge(
        "repro_cache_entries", "Live cache entries (from CacheStats).",
        ("cache", "session"),
    ).set(stats.entries, **labels)
    metrics.gauge(
        "repro_cache_bytes", "Approximate cached bytes (from CacheStats).",
        ("cache", "session"),
    ).set(stats.bytes, **labels)


def bridge_warm_stats(metrics: MetricsRegistry, stats: WarmCacheStats) -> None:
    """Publish the warm tier's counters as ``repro_warm_*`` gauges."""
    for name, value, help_text in (
        ("repro_warm_hits", stats.hits, "Warm-tier hits."),
        ("repro_warm_misses", stats.misses, "Warm-tier misses."),
        ("repro_warm_writes", stats.writes, "Warm-tier entries published."),
        (
            "repro_warm_dropped_writes",
            stats.dropped_writes,
            "Warm-tier write-behind submissions shed by the bounded queue.",
        ),
        (
            "repro_warm_quarantined",
            stats.quarantined,
            "Warm-tier entries quarantined on digest/parse failure.",
        ),
        (
            "repro_warm_gc_removed",
            stats.gc_removed,
            "Warm-tier files deleted by the byte-bounded mtime-GC.",
        ),
        ("repro_warm_entries", stats.entries, "Warm-tier on-disk entries."),
        ("repro_warm_bytes", stats.bytes, "Warm-tier on-disk bytes."),
    ):
        metrics.gauge(name, help_text).set(value)


def bridge_batcher_stats(
    metrics: MetricsRegistry, stats: BatcherStatsLike
) -> None:
    """Publish the aggregated coalescing counters as ``repro_coalescing_*``."""
    for name, value, help_text in (
        (
            "repro_coalescing_batches",
            stats.batches,
            "Fused dispatches executed by the coalescing tier.",
        ),
        (
            "repro_coalescing_requests",
            stats.requests,
            "Requests completed through coalesced dispatches.",
        ),
        (
            "repro_coalescing_coalesced_requests",
            stats.coalesced_requests,
            "In-window duplicate requests served as single-flight followers.",
        ),
        (
            "repro_coalescing_answer_requests",
            stats.answer_requests,
            "answer() requests served by the coalescing tier.",
        ),
        (
            "repro_coalescing_train_requests",
            stats.train_requests,
            "train_to() requests served by the coalescing tier.",
        ),
        (
            "repro_coalescing_fused_passes",
            stats.fused_passes,
            "Size-search passes actually executed by fused dispatches.",
        ),
        (
            "repro_coalescing_serial_passes",
            stats.serial_passes,
            "Size-search passes the same contracts would have cost serially.",
        ),
        (
            "repro_coalescing_passes_saved",
            stats.passes_saved,
            "Streamed passes coalescing avoided (serial minus fused; exact).",
        ),
        (
            "repro_coalescing_load_shed",
            stats.load_shed,
            "Submissions rejected by backpressure or admission control.",
        ),
        (
            "repro_coalescing_max_queue_depth",
            stats.max_queue_depth,
            "High-water mark of queued requests across batchers.",
        ),
        (
            "repro_coalescing_queue_wait_seconds",
            stats.queue_wait_seconds,
            "Total seconds requests spent queued before dispatch.",
        ),
        (
            "repro_coalescing_max_queue_wait_seconds",
            stats.max_queue_wait_seconds,
            "Worst single-request queue wait in seconds.",
        ),
    ):
        metrics.gauge(name, help_text).set(value)


def bridge_registry_stats(metrics: MetricsRegistry, stats: RegistryStats) -> None:
    """Publish a fleet snapshot: registry, per-cache, warm and serving.

    One call covers everything :meth:`SessionRegistry.stats` reports —
    occupancy and byte budget, lifetime hit/miss/eviction/invalidation/
    rebalance counters, the fleet-wide per-cache roll-up
    (:meth:`~repro.core.registry.RegistryStats.cache_totals`), each live
    session's byte share and traffic, the warm tier and the attached
    serving front-end's coalescing counters.
    """
    for name, value, help_text in (
        ("repro_registry_sessions", stats.sessions, "Live fleet sessions."),
        (
            "repro_registry_bytes",
            stats.bytes,
            "Cache bytes held by the fleet (bounded by the byte pool).",
        ),
        ("repro_registry_hits", stats.hits, "get_or_create calls served live."),
        (
            "repro_registry_misses",
            stats.misses,
            "get_or_create calls that constructed a session.",
        ),
        (
            "repro_registry_evictions",
            stats.evictions,
            "Whole sessions evicted for capacity/budget/idleness.",
        ),
        (
            "repro_registry_invalidations",
            stats.invalidations,
            "Sessions dropped by explicit invalidate()/clear().",
        ),
        (
            "repro_registry_fingerprint_invalidations",
            stats.fingerprint_invalidations,
            "Sessions discarded because the offered data's digest changed.",
        ),
        (
            "repro_registry_refreshes",
            stats.refreshes,
            "Sessions that adopted appended data in place via refresh().",
        ),
    ):
        metrics.gauge(name, help_text).set(value)
    if stats.max_total_bytes is not None:
        metrics.gauge(
            "repro_registry_max_total_bytes",
            "Global cache-byte pool shared by the fleet.",
        ).set(stats.max_total_bytes)
    # The fleet-wide roll-up publishes under the empty session label; the
    # CacheStats name field becomes the "cache" label.
    for _cache_name, totals in sorted(stats.cache_totals().items()):
        bridge_cache_stats(metrics, totals, session="")
    for info in stats.per_session:
        session = str(info.key)
        for cache in info.cache_stats.values():
            bridge_cache_stats(metrics, cache, session=session)
        metrics.gauge(
            "repro_session_bytes",
            "Cache bytes held by one fleet session.",
            ("session",),
        ).set(info.bytes, session=session)
        metrics.gauge(
            "repro_session_traffic",
            "Lifetime cache requests served by one fleet session.",
            ("session",),
        ).set(info.traffic, session=session)
        if info.budget_bytes is not None:
            metrics.gauge(
                "repro_session_budget_bytes",
                "Byte share the last rebalance assigned one session.",
                ("session",),
            ).set(info.budget_bytes, session=session)
    if stats.warm is not None:
        bridge_warm_stats(metrics, stats.warm)
    serving = stats.serving
    if serving is not None and hasattr(serving, "fused_passes"):
        bridge_batcher_stats(metrics, cast(BatcherStatsLike, serving))
