"""Unified observability tier: metrics, tracing and export for the stack.

One process-global :class:`~repro.obs.metrics.MetricsRegistry`
(:func:`get_metrics`) and one process-global
:class:`~repro.obs.tracing.Tracer` (:func:`get_tracer`) serve every
instrumented layer — streaming block fan-out, session serving, the
sample-size search, the coalescing tier — so a single scrape
(:func:`~repro.obs.export.render_prometheus`, or
``python -m repro.obs``) covers the fleet.

**Enablement semantics.**  The metrics registry is *always* live: the
streamed-pass counter behind
:func:`~repro.evaluation.streaming.streaming_pass_count` ticks through
it unconditionally, so the pass-economy accounting every benchmark gate
diffs works with observability off.  :func:`obs_enabled` gates only the
*extra* telemetry — tracing spans, latency histograms, per-pass
block/byte/wall-time metrics — and is consulted per operation, reading
the ``REPRO_OBS_ENABLED`` runtime alias first and the REP005 knob
``DEFAULT_OBS_ENABLED`` as the fallback (default off).  Results are
bitwise identical either way; the flag buys detail, never answers
(gated by ``benchmarks/bench_observability.py``).

**Pass attribution.**  The streaming engine labels each pass with the
calling *scope* ("accuracy", "size-search", "statistics", …) and session
label carried in a :class:`contextvars.ContextVar`
(:func:`pass_scope` / :func:`current_pass_scope`): session entry points
set the scope around their streamed computations, and because context
variables flow through ordinary call chains and asyncio tasks, the
counter attributes passes correctly even when many sessions interleave
on one event loop.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from repro.config import DEFAULT_OBS_ENABLED
from repro.obs.export import (
    load_json_snapshot,
    render_json,
    render_prometheus,
    render_span_tree,
    write_json_snapshot,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InstrumentSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "InstrumentSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "current_pass_scope",
    "get_metrics",
    "get_tracer",
    "load_json_snapshot",
    "maybe_span",
    "obs_enabled",
    "pass_scope",
    "render_json",
    "render_prometheus",
    "render_span_tree",
    "set_obs_enabled",
    "write_json_snapshot",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: programmatic override for :func:`obs_enabled` (None = consult the
#: environment).  A plain atomic reference — read per call, set rarely
#: (tests, the benchmark harness), so no lock is needed.
_ENABLED_OVERRIDE: bool | None = None

_GLOBAL_METRICS = MetricsRegistry()
_GLOBAL_TRACER = Tracer()

#: (scope, session) labels the streaming pass counter attributes ticks
#: to; context-local so interleaved sessions on one event loop attribute
#: correctly.
_PASS_SCOPE: ContextVar[tuple[str, str]] = ContextVar(
    "repro-obs-pass-scope", default=("unscoped", "")
)


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (always live)."""
    return _GLOBAL_METRICS


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER


def obs_enabled() -> bool:
    """Whether the extra telemetry (spans, histograms) is on right now.

    Precedence: :func:`set_obs_enabled` override, then the
    ``REPRO_OBS_ENABLED`` runtime alias, then the REP005 knob
    ``DEFAULT_OBS_ENABLED``.  Read per operation, so flipping the
    environment variable takes effect without re-importing anything.
    """
    if _ENABLED_OVERRIDE is not None:
        return _ENABLED_OVERRIDE
    raw = os.environ.get("REPRO_OBS_ENABLED")
    if raw is not None and raw.strip():
        return raw.strip().lower() in _TRUTHY
    return bool(DEFAULT_OBS_ENABLED)


def set_obs_enabled(value: bool | None) -> None:
    """Force telemetry on/off programmatically (``None`` = follow the env)."""
    global _ENABLED_OVERRIDE
    _ENABLED_OVERRIDE = value


def current_pass_scope() -> tuple[str, str]:
    """The (scope, session) labels streamed passes are attributed to."""
    return _PASS_SCOPE.get()


@contextmanager
def pass_scope(scope: str, session: str | None = None) -> Iterator[None]:
    """Attribute streamed passes in this block to ``scope`` (and session).

    ``session=None`` keeps the surrounding block's session label, so an
    estimator can refine the scope ("size-search") without knowing which
    session called it.
    """
    current = _PASS_SCOPE.get()
    token = _PASS_SCOPE.set(
        (str(scope), current[1] if session is None else str(session))
    )
    try:
        yield
    finally:
        _PASS_SCOPE.reset(token)


@contextmanager
def maybe_span(name: str, **attributes: object) -> Iterator[Span | None]:
    """Open a span on the global tracer when telemetry is enabled.

    The one-liner instrumentation sites use: with observability off it
    yields ``None`` and costs a single flag read, so the hot paths stay
    uninstrumented-fast by default.
    """
    if not obs_enabled():
        yield None
        return
    with _GLOBAL_TRACER.span(name, **attributes) as span:
        yield span
