"""Render metrics snapshots as Prometheus text or JSON; draw span trees.

The scrape surface of the observability tier.  Everything here is pure —
renderers take a frozen :class:`~repro.obs.metrics.MetricsSnapshot` and
return a string — so exports can run anywhere: on the serving front-end
(:meth:`~repro.serving.service.CoalescingService.prometheus_metrics`),
from the ``python -m repro.obs`` dump command, or over a snapshot a
process-backend worker shipped home.

Prometheus text exposition (version 0.0.4): one ``# HELP`` / ``# TYPE``
pair per instrument, label values escaped (backslash, double quote,
newline), label order fixed by the instrument's declared label names and
series sorted by label values — so two scrapes of equal state are
byte-identical and diffs in CI stay readable.  Histograms render the
cumulative ``_bucket{le="..."}`` series (inclusive upper bounds), the
``+Inf`` bucket, ``_sum`` and ``_count``.

The JSON form is a loss-free round trip: :func:`load_json_snapshot`
restores exactly the snapshot :func:`write_json_snapshot` saved, so
snapshots can be archived per run and re-rendered later.
"""

from __future__ import annotations

import json
import math
import os
from collections.abc import Sequence
from typing import Any

from repro.exceptions import ObservabilityError
from repro.obs.metrics import (
    HistogramValue,
    InstrumentSnapshot,
    MetricsSnapshot,
    SeriesValue,
)
from repro.obs.tracing import Span


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """The snapshot in Prometheus text-exposition format (deterministic)."""
    lines: list[str] = []
    for instrument in snapshot.instruments:
        if instrument.help:
            lines.append(
                f"# HELP {instrument.name} {_escape_help(instrument.help)}"
            )
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if instrument.kind == "histogram":
            for series in instrument.histogram_series:
                cumulative = 0
                for bound, count in zip(instrument.buckets, series.counts):
                    cumulative += count
                    block = _label_block(
                        instrument.label_names,
                        series.labels,
                        f'le="{_format_value(bound)}"',
                    )
                    lines.append(
                        f"{instrument.name}_bucket{block} {cumulative}"
                    )
                block = _label_block(
                    instrument.label_names, series.labels, 'le="+Inf"'
                )
                lines.append(f"{instrument.name}_bucket{block} {series.count}")
                block = _label_block(instrument.label_names, series.labels)
                lines.append(
                    f"{instrument.name}_sum{block} "
                    f"{_format_value(series.total)}"
                )
                lines.append(f"{instrument.name}_count{block} {series.count}")
        else:
            for series in instrument.series:
                block = _label_block(instrument.label_names, series.labels)
                lines.append(
                    f"{instrument.name}{block} {_format_value(series.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# JSON snapshot round trip
# ----------------------------------------------------------------------
def snapshot_to_dict(snapshot: MetricsSnapshot) -> dict[str, Any]:
    """The snapshot as plain JSON-serialisable dicts/lists (loss-free)."""
    instruments = []
    for instrument in snapshot.instruments:
        entry: dict[str, Any] = {
            "name": instrument.name,
            "kind": instrument.kind,
            "help": instrument.help,
            "label_names": list(instrument.label_names),
            "buckets": list(instrument.buckets),
        }
        if instrument.kind == "histogram":
            entry["series"] = [
                {
                    "labels": list(series.labels),
                    "counts": list(series.counts),
                    "sum": series.total,
                    "count": series.count,
                }
                for series in instrument.histogram_series
            ]
        else:
            entry["series"] = [
                {"labels": list(series.labels), "value": series.value}
                for series in instrument.series
            ]
        instruments.append(entry)
    return {"version": 1, "instruments": instruments}


def snapshot_from_dict(payload: dict[str, Any]) -> MetricsSnapshot:
    """Inverse of :func:`snapshot_to_dict` (rejects unknown versions)."""
    if payload.get("version") != 1:
        raise ObservabilityError(
            f"unsupported metrics snapshot version {payload.get('version')!r}"
        )
    instruments = []
    for entry in payload.get("instruments", []):
        kind = str(entry["kind"])
        series: tuple[SeriesValue, ...] = ()
        histogram_series: tuple[HistogramValue, ...] = ()
        if kind == "histogram":
            histogram_series = tuple(
                HistogramValue(
                    labels=tuple(str(v) for v in raw["labels"]),
                    counts=tuple(int(c) for c in raw["counts"]),
                    total=float(raw["sum"]),
                    count=int(raw["count"]),
                )
                for raw in entry.get("series", [])
            )
        else:
            series = tuple(
                SeriesValue(
                    labels=tuple(str(v) for v in raw["labels"]),
                    value=float(raw["value"]),
                )
                for raw in entry.get("series", [])
            )
        instruments.append(
            InstrumentSnapshot(
                name=str(entry["name"]),
                kind=kind,
                help=str(entry.get("help", "")),
                label_names=tuple(str(n) for n in entry["label_names"]),
                buckets=tuple(float(b) for b in entry.get("buckets", [])),
                series=series,
                histogram_series=histogram_series,
            )
        )
    return MetricsSnapshot(instruments=tuple(instruments))


def render_json(snapshot: MetricsSnapshot) -> str:
    """The snapshot as deterministic, indented JSON."""
    return json.dumps(snapshot_to_dict(snapshot), indent=2, sort_keys=True)


def write_json_snapshot(
    snapshot: MetricsSnapshot, path: str | os.PathLike[str]
) -> None:
    """Write the JSON form to ``path`` (parent directory must exist)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(snapshot))
        handle.write("\n")


def load_json_snapshot(path: str | os.PathLike[str]) -> MetricsSnapshot:
    """Load a snapshot previously saved by :func:`write_json_snapshot`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ObservabilityError(f"{os.fspath(path)!r}: not a metrics snapshot")
    return snapshot_from_dict(payload)


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------
def render_span_tree(spans: Sequence[Span], trace_id: int | None = None) -> str:
    """Draw finished spans as indented per-trace trees (deterministic).

    Children appear under their parents in span-id order; spans whose
    parent fell out of the ring buffer are promoted to roots so partial
    traces still render.  ``trace_id`` restricts the output to one trace.
    """
    selected = [
        span
        for span in spans
        if span.finished and (trace_id is None or span.trace_id == trace_id)
    ]
    by_id = {span.span_id: span for span in selected}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in selected:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        duration_ms = span.duration * 1000.0
        attributes = "".join(
            f" {key}={span.attributes[key]}" for key in sorted(span.attributes)
        )
        lines.append(
            f"{'  ' * depth}- {span.name} ({duration_ms:.3f} ms)"
            f"{attributes}"
        )
        for child in sorted(
            children.get(span.span_id, []), key=lambda s: s.span_id
        ):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.trace_id, s.span_id)):
        emit(root, 0)
    return "\n".join(lines)
