"""Linear regression (Lin) model class specification.

Gaussian-noise linear regression is an MLE problem: the negative
log-likelihood of ``y_i ~ N(θᵀx_i, σ²)`` is, up to constants,

    f_n(θ) = (1/2σ²) · (1/n) Σ (θᵀx_i − y_i)² + (β/2) ‖θ‖²

whose per-example gradient is ``q(θ; x_i, y_i) = (θᵀx_i − y_i) x_i / σ²``
and whose Hessian has the closed form ``H = XᵀX / (nσ²) + βI`` — which is
why Lin supports all three statistics-computation methods of Section 3.4.

The noise variance σ² matters for BlinkML even though it does not change
the minimiser: the ObservedFisher method relies on the information-matrix
equality (gradient covariance = Hessian), which only holds for the
*correctly specified* likelihood.  With the default ``noise_variance=1``
(the implicit assumption in the paper's formulation) and data whose residual
variance differs from 1, ObservedFisher's covariance is mis-scaled by
``(σ²_true)²``.  Pass the true/estimated noise variance — or use
:meth:`LinearRegressionSpec.with_estimated_noise` — to keep the statistics
calibrated; this is the Lin analogue of PPCA's ``sigma2`` hyperparameter.

An intercept column is the caller's responsibility (the synthetic workloads
are generated centred, matching the paper's standardised datasets).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import (
    DiffAccumulator,
    ModelClassSpec,
    holdout_label_scale,
)


class LinearRegressionSpec(ModelClassSpec):
    """L2-regularised Gaussian linear regression.

    Parameters
    ----------
    regularization:
        The L2 coefficient β (the paper uses 0.001 in its experiments).
    noise_variance:
        The observation-noise variance σ² of the Gaussian likelihood.  It
        rescales the objective (and therefore the effective regularisation
        strength) and calibrates the ObservedFisher statistics; it does not
        change the unregularised minimiser.
    normalize_difference:
        When true (default) the prediction-difference metric
        ``sqrt(E[(m_n(x) − m_N(x))²])`` is divided by the holdout-label
        standard deviation, so that "accuracy = 1 − v" is on the same 0–100 %
        scale the paper sweeps for classification models.
    """

    task = "regression"
    name = "lin"

    def __init__(
        self,
        regularization: float = 1e-3,
        noise_variance: float = 1.0,
        normalize_difference: bool = True,
    ):
        super().__init__(regularization=regularization)
        if noise_variance <= 0:
            raise ModelSpecError("noise_variance must be positive")
        self.noise_variance = float(noise_variance)
        self.normalize_difference = normalize_difference

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_estimated_noise(
        cls,
        dataset: Dataset,
        regularization: float = 1e-3,
        normalize_difference: bool = True,
        max_rows: int = 20_000,
    ) -> LinearRegressionSpec:
        """Build a spec whose σ² is the residual variance of a quick OLS fit.

        A least-squares fit on (at most ``max_rows``) rows estimates the
        residual variance; that estimate becomes the likelihood's noise
        variance so the information-matrix equality — and hence the
        ObservedFisher statistics — are calibrated for this dataset.
        """
        if dataset.y is None:
            raise ModelSpecError("noise estimation requires labels")
        view = dataset.head(min(max_rows, dataset.n_rows))
        theta, *_ = np.linalg.lstsq(view.X, view.y, rcond=None)
        residuals = view.y - view.X @ theta
        noise_variance = float(np.mean(residuals**2))
        if noise_variance <= 0:
            noise_variance = 1.0
        return cls(
            regularization=regularization,
            noise_variance=noise_variance,
            normalize_difference=normalize_difference,
        )

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def n_parameters(self, dataset: Dataset) -> int:
        return dataset.n_features

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def _residuals(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        return dataset.X @ theta - dataset.y

    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        self.validate_dataset(dataset)
        residuals = self._residuals(theta, dataset)
        data_term = 0.5 * float(np.mean(residuals**2)) / self.noise_variance
        reg_term = 0.5 * self.regularization * float(theta @ theta)
        return data_term + reg_term

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        self.validate_dataset(dataset)
        residuals = self._residuals(theta, dataset)
        return (residuals / self.noise_variance)[:, None] * dataset.X

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        del theta  # the Hessian of a quadratic does not depend on θ
        n, d = dataset.X.shape
        return dataset.X.T @ dataset.X / (n * self.noise_variance) + self.regularization * np.eye(d)

    # ------------------------------------------------------------------
    # Prediction and diff
    # ------------------------------------------------------------------
    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=np.float64) @ np.asarray(theta, dtype=np.float64)

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        Thetas = self._as_parameter_batch(Thetas)
        return Thetas @ np.asarray(X, dtype=np.float64).T

    def _difference_scale(self, dataset: Dataset) -> float:
        if not self.normalize_difference:
            return 1.0
        return holdout_label_scale(dataset, "regression")

    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        predictions_a = self.predict(theta_a, dataset.X)
        predictions_b = self.predict(theta_b, dataset.X)
        rms = float(np.sqrt(np.mean((predictions_a - predictions_b) ** 2)))
        return rms / self._difference_scale(dataset)

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        reference = self._reference_predictions(theta_ref, dataset.X)
        batch = self.predict_many(Thetas, dataset.X)  # (k, n) in one GEMM
        rms = np.sqrt(np.mean((batch - reference[None, :]) ** 2, axis=1))
        return rms / self._difference_scale(dataset)

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        # Predictions are linear in θ, so the k prediction gaps collapse to
        # a single GEMM over the parameter deltas.
        deltas = self.predict_many(Thetas_a - Thetas_b, dataset.X)
        rms = np.sqrt(np.mean(deltas**2, axis=1))
        return rms / self._difference_scale(dataset)

    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Streaming RMS gap: per-block squared-error sums, one final sqrt."""
        return self._rms_accumulator(theta_ref, Thetas, self._difference_scale(dataset))

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        # Linearity: the k prediction gaps per block are one GEMM over the
        # parameter deltas, exactly as in the materialised pairwise path.
        return self._pairwise_rms_accumulator(
            Thetas_a, Thetas_b, self._difference_scale(dataset), linear_predictions=True
        )

    def describe(self) -> dict:
        description = super().describe()
        description["normalize_difference"] = self.normalize_difference
        description["noise_variance"] = self.noise_variance
        return description
