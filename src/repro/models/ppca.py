"""Probabilistic principal component analysis (PPCA) model class specification.

PPCA (Tipping & Bishop, 1999) models observations as ``x ~ N(0, C)`` with
``C = ΘΘᵀ + σ²I`` where Θ is a d-by-q factor-loading matrix.  Training
maximises the Gaussian likelihood, so PPCA fits BlinkML's MLE abstraction
(Appendix A):

    f_n(Θ) = (1/2)(d log 2π + log |C| + tr(C⁻¹ S)),  S = (1/n) Σ x_i x_iᵀ

with per-example gradient ``q(Θ; x_i) = C⁻¹Θ − C⁻¹ x_i x_iᵀ C⁻¹ Θ`` and
no regulariser (``r(Θ) = 0``).

All d-by-d inverses are avoided through the Woodbury identity, so the cost
per evaluation is O(n·d·q + q³), which keeps the model usable for the
high-dimensional experiments.  Parameters are exchanged as the flattened
(d·q)-vector, exactly as the paper describes.

The paper's model-difference metric for unsupervised learning (Appendix C)
is ``v = 1 − cosine(θ_n, θ_N)`` on the flattened parameters.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import (
    DiffAccumulator,
    ModelClassSpec,
    PrecomputedDiffAccumulator,
)


class PPCASpec(ModelClassSpec):
    """Probabilistic PCA with ``n_factors`` latent dimensions.

    Parameters
    ----------
    n_factors:
        Number of factors q (the paper uses 10).
    sigma2:
        Observation noise variance σ², treated as a fixed hyperparameter.
        The paper notes the optimal σ can be recovered once Θ is known; the
        guarantee machinery only needs the Θ-gradients, so holding σ² fixed
        keeps the MLE abstraction exact.
    regularization:
        Optional L2 coefficient on Θ (0 in the paper).
    """

    task = "unsupervised"
    name = "ppca"

    def __init__(self, n_factors: int = 10, sigma2: float = 1.0, regularization: float = 0.0):
        super().__init__(regularization=regularization)
        if n_factors < 1:
            raise ModelSpecError("PPCA needs at least one factor")
        if sigma2 <= 0:
            raise ModelSpecError("noise variance sigma2 must be positive")
        self.n_factors = int(n_factors)
        self.sigma2 = float(sigma2)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def with_estimated_noise(
        cls,
        dataset: Dataset,
        n_factors: int = 10,
        regularization: float = 0.0,
        max_rows: int = 20_000,
        min_sigma2: float = 1e-3,
    ) -> PPCASpec:
        """Build a spec whose σ² is the Tipping–Bishop maximum-likelihood value.

        For PPCA the MLE of the noise variance is the average of the
        ``d − q`` smallest eigenvalues of the sample covariance; estimating
        it from a subsample keeps the Gaussian likelihood well specified,
        which in turn keeps the ObservedFisher statistics calibrated (the
        same consideration as ``LinearRegressionSpec.with_estimated_noise``).
        """
        view = dataset.head(min(max_rows, dataset.n_rows))
        if n_factors >= view.n_features:
            raise ModelSpecError("n_factors must be smaller than the feature dimension")
        centered = view.X - view.X.mean(axis=0)
        sample_covariance = centered.T @ centered / view.n_rows
        eigenvalues = np.sort(np.linalg.eigvalsh(sample_covariance))
        discarded = eigenvalues[: view.n_features - n_factors]
        sigma2 = float(max(discarded.mean(), min_sigma2))
        return cls(n_factors=n_factors, sigma2=sigma2, regularization=regularization)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def n_parameters(self, dataset: Dataset) -> int:
        if self.n_factors > dataset.n_features:
            raise ModelSpecError(
                f"n_factors={self.n_factors} exceeds feature dimension {dataset.n_features}"
            )
        return dataset.n_features * self.n_factors

    def initial_parameters(self, dataset: Dataset, rng: np.random.Generator | None = None) -> np.ndarray:
        # Θ = 0 is a saddle point of the likelihood, so start from a small,
        # deterministic random loading.  Using a fixed seed keeps the full
        # and approximate models in the same orientation, which the cosine
        # difference metric relies on.
        rng = rng or np.random.default_rng(12345)
        d = dataset.n_features
        return 0.1 * rng.standard_normal(d * self.n_factors)

    def reshape(self, theta: np.ndarray, n_features: int) -> np.ndarray:
        """View the flat parameter vector as the (d, q) loading matrix Θ."""
        theta = np.asarray(theta, dtype=np.float64)
        expected = n_features * self.n_factors
        if theta.shape[0] != expected:
            raise ModelSpecError(
                f"parameter vector has length {theta.shape[0]}, expected {expected}"
            )
        return theta.reshape(n_features, self.n_factors)

    # ------------------------------------------------------------------
    # Woodbury helpers
    # ------------------------------------------------------------------
    def _woodbury(self, Theta: np.ndarray) -> tuple[np.ndarray, np.ndarray, float]:
        """Return ``(M, M⁻¹, log|C|)`` for ``C = ΘΘᵀ + σ²I``.

        ``M = σ²I_q + ΘᵀΘ`` is the q-by-q capacitance matrix of the Woodbury
        identity; ``log|C| = (d − q) log σ² + log|M|``.
        """
        d, q = Theta.shape
        M = self.sigma2 * np.eye(q) + Theta.T @ Theta
        sign, logdet_M = np.linalg.slogdet(M)
        if sign <= 0:
            raise ModelSpecError("capacitance matrix M is not positive definite")
        M_inv = np.linalg.inv(M)
        logdet_C = (d - q) * np.log(self.sigma2) + logdet_M
        return M, M_inv, logdet_C

    def _apply_C_inverse(self, Theta: np.ndarray, M_inv: np.ndarray, V: np.ndarray) -> np.ndarray:
        """Compute ``C⁻¹ V`` via Woodbury without forming the d-by-d ``C⁻¹``."""
        return (V - Theta @ (M_inv @ (Theta.T @ V))) / self.sigma2

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        Theta = self.reshape(theta, dataset.n_features)
        _, M_inv, logdet_C = self._woodbury(Theta)
        X = dataset.X
        n, d = X.shape
        # tr(C⁻¹ S) with S = (1/n) XᵀX, evaluated without forming S:
        # (1/(n σ²)) (‖X‖_F² − tr(M⁻¹ (XΘ)ᵀ (XΘ))).
        XTheta = X @ Theta
        trace_term = (float(np.sum(X * X)) - float(np.sum((XTheta @ M_inv) * XTheta))) / (
            n * self.sigma2
        )
        data_term = 0.5 * (d * np.log(2.0 * np.pi) + logdet_C + trace_term)
        reg_term = 0.5 * self.regularization * float(theta @ theta)
        return data_term + reg_term

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        Theta = self.reshape(theta, dataset.n_features)
        _, M_inv, _ = self._woodbury(Theta)
        X = dataset.X
        n, d = X.shape
        q = self.n_factors
        # A = C⁻¹Θ is shared by every example; the data-dependent part is
        # the rank-one correction C⁻¹ x_i x_iᵀ A.
        A = self._apply_C_inverse(Theta, M_inv, Theta)  # (d, q)
        B = self._apply_C_inverse(Theta, M_inv, X.T).T  # rows are C⁻¹ x_i, (n, d)
        P = X @ A  # rows are x_iᵀ A, (n, q)
        per_example = A[None, :, :] - B[:, :, None] * P[:, None, :]
        return per_example.reshape(n, d * q)

    # ------------------------------------------------------------------
    # Prediction and diff
    # ------------------------------------------------------------------
    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Posterior-mean latent scores ``E[z | x] = M⁻¹ Θᵀ x`` per row."""
        X = np.asarray(X, dtype=np.float64)
        Theta = self.reshape(theta, X.shape[1])
        _, M_inv, _ = self._woodbury(Theta)
        return X @ Theta @ M_inv

    def _loading_batch(self, Thetas: np.ndarray, n_features: int) -> np.ndarray:
        """View a ``(k, d·q)`` parameter batch as ``(k, d, q)`` loadings."""
        Thetas = self._as_parameter_batch(Thetas)
        expected = n_features * self.n_factors
        if Thetas.shape[1] != expected:
            raise ModelSpecError(
                f"parameter vectors have length {Thetas.shape[1]}, expected {expected}"
            )
        return Thetas.reshape(Thetas.shape[0], n_features, self.n_factors)

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Latent scores for each loading matrix, shape ``(k, n, q)``.

        The expensive ``X Θ_i`` products for all k loadings collapse into a
        single ``(n, d) × (d, k·q)`` GEMM; only the q-by-q capacitance
        solves stay per-member (they are independent of n).
        """
        X = np.asarray(X, dtype=np.float64)
        q = self.n_factors
        loadings = self._loading_batch(Thetas, X.shape[1])  # (k, d, q)
        k, d, _ = loadings.shape
        projected = X @ loadings.transpose(1, 0, 2).reshape(d, k * q)  # (n, k·q)
        projected = projected.reshape(-1, k, q).transpose(1, 0, 2)  # (k, n, q)
        M = self.sigma2 * np.eye(q)[None, :, :] + loadings.transpose(0, 2, 1) @ loadings
        signs, _ = np.linalg.slogdet(M)
        if np.any(signs <= 0):
            raise ModelSpecError("capacitance matrix M is not positive definite")
        return projected @ np.linalg.inv(M)

    def reconstruct(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Reconstruction ``Θ E[z | x]`` of each row from its latent scores."""
        X = np.asarray(X, dtype=np.float64)
        Theta = self.reshape(theta, X.shape[1])
        return self.predict(theta, X) @ Theta.T

    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        """``1 − cosine`` between loading matrices after rotation alignment.

        The PPCA likelihood is invariant under right-rotation of the loading
        matrix (``ΘΘᵀ`` is unchanged by ``Θ → ΘR`` for orthogonal R), so two
        independently trained models can describe the *same* distribution
        with differently rotated factors.  The paper's plain cosine metric
        (Appendix C) implicitly assumes a consistent orientation; to keep
        the metric meaningful for independently trained models we first
        align the factors with the optimal orthogonal rotation (Procrustes)
        and then take ``1 − cosine`` of the flattened matrices.  For the
        parameter perturbations the estimators sample (no rotation), the
        aligned and unaligned metrics coincide up to second order.
        """
        a = np.asarray(theta_a, dtype=np.float64)
        b = np.asarray(theta_b, dtype=np.float64)
        norm_a = float(np.linalg.norm(a))
        norm_b = float(np.linalg.norm(b))
        if norm_a == 0 or norm_b == 0:
            return 1.0
        Theta_a = self.reshape(a, dataset.n_features)
        Theta_b = self.reshape(b, dataset.n_features)
        # Orthogonal Procrustes: R = U Vᵀ from the SVD of Θ_aᵀ Θ_b maximises
        # <Θ_a R, Θ_b>, and that maximum inner product is the sum of the
        # singular values of Θ_aᵀ Θ_b.
        singular_values = np.linalg.svd(Theta_a.T @ Theta_b, compute_uv=False)
        cosine = float(singular_values.sum()) / (norm_a * norm_b)
        return 1.0 - min(cosine, 1.0)

    def _batched_procrustes_differences(
        self,
        loadings_a: np.ndarray,
        loadings_b: np.ndarray,
        norms_a: np.ndarray,
        norms_b: np.ndarray,
    ) -> np.ndarray:
        """Aligned ``1 − cosine`` for matched ``(k, d, q)`` loading stacks.

        The k cross-products are one batched q×q GEMM stack and the nuclear
        norms come from one batched SVD — no per-pair Python loop.
        """
        differences = np.ones(loadings_a.shape[0])
        valid = (norms_a > 0) & (norms_b > 0)
        if not np.any(valid):
            return differences
        cross = loadings_a[valid].transpose(0, 2, 1) @ loadings_b[valid]  # (v, q, q)
        singular_values = np.linalg.svd(cross, compute_uv=False)  # (v, q)
        cosines = singular_values.sum(axis=1) / (norms_a[valid] * norms_b[valid])
        differences[valid] = 1.0 - np.minimum(cosines, 1.0)
        return differences

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        theta_ref = np.asarray(theta_ref, dtype=np.float64)
        loadings = self._loading_batch(Thetas, dataset.n_features)
        norm_ref = float(np.linalg.norm(theta_ref))
        if norm_ref == 0:
            return np.ones(loadings.shape[0])
        reference = self.reshape(theta_ref, dataset.n_features)
        references = np.broadcast_to(reference, loadings.shape)
        norms = np.linalg.norm(loadings.reshape(loadings.shape[0], -1), axis=1)
        return self._batched_procrustes_differences(
            references, loadings, np.full(loadings.shape[0], norm_ref), norms
        )

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        loadings_a = self._loading_batch(Thetas_a, dataset.n_features)
        loadings_b = self._loading_batch(Thetas_b, dataset.n_features)
        norms_a = np.linalg.norm(loadings_a.reshape(loadings_a.shape[0], -1), axis=1)
        norms_b = np.linalg.norm(loadings_b.reshape(loadings_b.shape[0], -1), axis=1)
        return self._batched_procrustes_differences(loadings_a, loadings_b, norms_a, norms_b)

    # Streaming note: PPCA's diff lives in parameter space — the aligned
    # ``1 − cosine`` metric depends only on the loading matrices
    # (Appendix C), already O(k · d · q) in time and memory with no
    # ``(k, n_holdout)`` block to shard.  The overrides below hand the
    # driver a PrecomputedDiffAccumulator (``needs_holdout_blocks = False``)
    # computed straight from the parameter batches; unlike the generic
    # base-class fallback they never materialise the holdout, because the
    # metric reads only ``dataset.n_features`` — which block sources
    # (repro.data.store.ShardedDataset) expose without touching a row, so
    # a PPCA session over an out-of-core holdout stays out of core.
    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        return PrecomputedDiffAccumulator(
            self.prediction_differences(theta_ref, Thetas, dataset)
        )

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        return PrecomputedDiffAccumulator(
            self.pairwise_prediction_differences(Thetas_a, Thetas_b, dataset)
        )

    def describe(self) -> dict:
        description = super().describe()
        description.update({"n_factors": self.n_factors, "sigma2": self.sigma2})
        return description
