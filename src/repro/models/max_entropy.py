"""Max-entropy classifier (ME): multinomial / softmax logistic regression.

Multiclass classification with labels in {0, …, K−1}.  Parameters form a
K-by-d matrix Θ that is flattened to a vector when exchanged with the rest
of the system (Appendix A notes that BlinkML internally passes flattened
parameters).  The L2-regularised objective is

    f_n(Θ) = −(1/n) Σ log softmax(Θ x_i)[y_i] + (β/2) ‖Θ‖²_F

with per-example gradient (for class k):

    q_k(Θ; x_i, y_i) = (softmax(Θ x_i)[k] − 1[y_i = k]) x_i

The closed-form Hessian is a Kd-by-Kd block matrix
``H[(k,l)] = (1/n) Σ p_ik (1[k=l] − p_il) x_i x_iᵀ + β 1[k=l] I``; it is
provided for completeness (ClosedForm) but only used for small K·d.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import DiffAccumulator, ModelClassSpec


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-subtraction for stability."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class MaxEntropySpec(ModelClassSpec):
    """L2-regularised max-entropy (multiclass softmax) classifier.

    Parameters
    ----------
    n_classes:
        Number of classes K.  If ``None`` it is inferred from the training
        labels the first time the spec sees a dataset.
    regularization:
        L2 coefficient β.
    """

    task = "multiclass"
    name = "me"

    def __init__(self, n_classes: int | None = None, regularization: float = 1e-3):
        super().__init__(regularization=regularization)
        if n_classes is not None and n_classes < 2:
            raise ModelSpecError("a classifier needs at least two classes")
        self.n_classes = n_classes

    # ------------------------------------------------------------------
    # Parameter bookkeeping
    # ------------------------------------------------------------------
    def _resolve_classes(self, dataset: Dataset) -> int:
        if self.n_classes is not None:
            return self.n_classes
        if dataset.y is None:
            raise ModelSpecError("cannot infer class count from an unlabelled dataset")
        inferred = int(dataset.y.max()) + 1
        self.n_classes = max(inferred, 2)
        return self.n_classes

    def n_parameters(self, dataset: Dataset) -> int:
        return self._resolve_classes(dataset) * dataset.n_features

    def reshape(self, theta: np.ndarray, n_features: int) -> np.ndarray:
        """View the flat parameter vector as the (K, d) matrix Θ."""
        if self.n_classes is None:
            raise ModelSpecError("class count unknown; call n_parameters or fit first")
        theta = np.asarray(theta, dtype=np.float64)
        expected = self.n_classes * n_features
        if theta.shape[0] != expected:
            raise ModelSpecError(
                f"parameter vector has length {theta.shape[0]}, expected {expected}"
            )
        return theta.reshape(self.n_classes, n_features)

    def validate_dataset(self, dataset: Dataset) -> None:
        super().validate_dataset(dataset)
        if dataset.y is None:
            return
        if np.any(dataset.y < 0):
            raise ModelSpecError("class labels must be non-negative integers")
        if self.n_classes is not None and dataset.y.max() >= self.n_classes:
            raise ModelSpecError(
                f"label {int(dataset.y.max())} is outside the configured {self.n_classes} classes"
            )

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        self.validate_dataset(dataset)
        K = self._resolve_classes(dataset)
        Theta = self.reshape(theta, dataset.n_features)
        logits = dataset.X @ Theta.T
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=1))
        correct = shifted[np.arange(dataset.n_rows), dataset.y.astype(np.intp)]
        data_term = float(np.mean(log_norm - correct))
        reg_term = 0.5 * self.regularization * float(theta @ theta)
        del K
        return data_term + reg_term

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        self.validate_dataset(dataset)
        K = self._resolve_classes(dataset)
        Theta = self.reshape(theta, dataset.n_features)
        probabilities = softmax(dataset.X @ Theta.T)  # (n, K)
        indicator = np.zeros_like(probabilities)
        indicator[np.arange(dataset.n_rows), dataset.y.astype(np.intp)] = 1.0
        residual = probabilities - indicator  # (n, K)
        # q_i is the outer product residual_i ⊗ x_i flattened to length K·d.
        per_example = residual[:, :, None] * dataset.X[:, None, :]
        return per_example.reshape(dataset.n_rows, K * dataset.n_features)

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        self.validate_dataset(dataset)
        K = self._resolve_classes(dataset)
        d = dataset.n_features
        Theta = self.reshape(theta, d)
        probabilities = softmax(dataset.X @ Theta.T)
        n = dataset.n_rows
        H = np.zeros((K * d, K * d))
        for k in range(K):
            for l in range(K):
                weights = probabilities[:, k] * ((1.0 if k == l else 0.0) - probabilities[:, l])
                block = dataset.X.T @ (dataset.X * weights[:, None]) / n
                # Note the sign: d/dΘ_l of (p_k − 1[y=k]) x is p_k(1[k=l] − p_l) x xᵀ.
                H[k * d : (k + 1) * d, l * d : (l + 1) * d] = block
        H += self.regularization * np.eye(K * d)
        return H

    # ------------------------------------------------------------------
    # Prediction and diff
    # ------------------------------------------------------------------
    def predict_proba(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Theta = self.reshape(theta, X.shape[1])
        return softmax(X @ Theta.T)

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(theta, X), axis=1).astype(np.int64)

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Thetas = self._as_parameter_batch(Thetas)
        if self.n_classes is None:
            raise ModelSpecError("class count unknown; call n_parameters or fit first")
        K = self.n_classes
        d = X.shape[1]
        k = Thetas.shape[0]
        if Thetas.shape[1] != K * d:
            raise ModelSpecError(
                f"parameter vectors have length {Thetas.shape[1]}, expected {K * d}"
            )
        # All k·K class scores come from a single (k·K, d) × (d, n) GEMM.
        # Softmax is strictly monotone per row, so argmax over raw logits
        # matches argmax over the per-θ predict_proba path.
        logits = (Thetas.reshape(k * K, d) @ X.T).reshape(k, K, -1)
        return np.argmax(logits, axis=1).astype(np.int64)

    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        predictions_a = self.predict(theta_a, dataset.X)
        predictions_b = self.predict(theta_b, dataset.X)
        return float(np.mean(predictions_a != predictions_b))

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        reference = self._reference_predictions(theta_ref, dataset.X)
        batch = self.predict_many(Thetas, dataset.X)  # (k, n)
        return np.mean(batch != reference[None, :], axis=1)

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        labels = self.predict_many(
            np.concatenate([Thetas_a, Thetas_b], axis=0), dataset.X
        )
        k = Thetas_a.shape[0]
        return np.mean(labels[:k] != labels[k:], axis=1)

    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Streaming multiclass disagreement: exact argmax-mismatch counts."""
        del dataset
        return self._disagreement_accumulator(theta_ref, Thetas)

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        del dataset
        return self._pairwise_disagreement_accumulator(Thetas_a, Thetas_b)

    def describe(self) -> dict:
        description = super().describe()
        description["n_classes"] = self.n_classes
        return description
