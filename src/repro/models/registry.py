"""Registry mapping short model names to their specifications.

The benchmark harness and the examples refer to models by the abbreviations
the paper uses (Lin, LR, ME, PPCA); this module resolves them.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ModelSpecError
from repro.models.base import ModelClassSpec
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec

_REGISTRY: dict[str, type[ModelClassSpec]] = {
    "lin": LinearRegressionSpec,
    "linear_regression": LinearRegressionSpec,
    "lr": LogisticRegressionSpec,
    "logistic_regression": LogisticRegressionSpec,
    "me": MaxEntropySpec,
    "max_entropy": MaxEntropySpec,
    "poisson": PoissonRegressionSpec,
    "poisson_regression": PoissonRegressionSpec,
    "ppca": PPCASpec,
}


def available_models() -> list[str]:
    """Return the canonical short names of the supported model classes."""
    return ["lin", "lr", "me", "poisson", "ppca"]


def get_model_spec(name: str, **kwargs: Any) -> ModelClassSpec:
    """Instantiate a model class specification by name.

    Parameters
    ----------
    name:
        Case-insensitive model name: ``lin``, ``lr``, ``me``, ``ppca`` (or
        their long forms).
    kwargs:
        Forwarded to the spec constructor (e.g. ``regularization=1e-3``,
        ``n_factors=10``).
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise ModelSpecError(
            f"unknown model {name!r}; available: {available_models()}"
        )
    return _REGISTRY[key](**kwargs)
