"""Model class specifications (MCS).

The MCS is the abstraction that keeps BlinkML's estimators generic
(Section 2.2): every supported model exposes its per-example gradients
(``grads``) and a prediction-difference function (``diff``), plus the loss
and prediction functions needed by the trainer and by the evaluation
harness.

Supported model classes (Section 5.1):

* :class:`repro.models.linear_regression.LinearRegressionSpec` (Lin)
* :class:`repro.models.logistic_regression.LogisticRegressionSpec` (LR)
* :class:`repro.models.max_entropy.MaxEntropySpec` (ME)
* :class:`repro.models.ppca.PPCASpec` (PPCA)
"""

from repro.models.base import ModelClassSpec, TrainedModel
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec
from repro.models.registry import get_model_spec, available_models

__all__ = [
    "ModelClassSpec",
    "TrainedModel",
    "LinearRegressionSpec",
    "LogisticRegressionSpec",
    "MaxEntropySpec",
    "PoissonRegressionSpec",
    "PPCASpec",
    "get_model_spec",
    "available_models",
]
