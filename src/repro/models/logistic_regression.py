"""Logistic regression (LR) model class specification.

Binary classification with labels in {0, 1}.  The L2-regularised objective
(Appendix A of the paper):

    f_n(θ) = −(1/n) Σ [ t_i log σ(θᵀx_i) + (1 − t_i) log(1 − σ(θᵀx_i)) ]
             + (β/2) ‖θ‖²

with per-example gradient ``q(θ; x_i, t_i) = (σ(θᵀx_i) − t_i) x_i`` and the
closed-form Hessian ``H(θ) = (1/n) XᵀQX + βI`` where Q is diagonal with
entries ``σ(θᵀx_i)(1 − σ(θᵀx_i))`` — the exact expression quoted for the
ClosedForm method in Section 3.4.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import DiffAccumulator, ModelClassSpec


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def log_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable ``log σ(z) = −log(1 + e^{−z})``."""
    z = np.asarray(z, dtype=np.float64)
    return -np.logaddexp(0.0, -z)


class LogisticRegressionSpec(ModelClassSpec):
    """L2-regularised binary logistic regression."""

    task = "binary"
    name = "lr"

    def __init__(self, regularization: float = 1e-3):
        super().__init__(regularization=regularization)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def n_parameters(self, dataset: Dataset) -> int:
        return dataset.n_features

    def validate_dataset(self, dataset: Dataset) -> None:
        super().validate_dataset(dataset)
        labels = np.unique(dataset.y)
        if not np.all(np.isin(labels, (0, 1))):
            raise ModelSpecError(
                f"logistic regression expects labels in {{0, 1}}, got {labels[:10]}"
            )

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        self.validate_dataset(dataset)
        z = dataset.X @ theta
        t = dataset.y.astype(np.float64)
        # −[t log σ(z) + (1 − t) log σ(−z)] written with stable log-sigmoids.
        log_likelihood = t * log_sigmoid(z) + (1.0 - t) * log_sigmoid(-z)
        data_term = -float(np.mean(log_likelihood))
        reg_term = 0.5 * self.regularization * float(theta @ theta)
        return data_term + reg_term

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        self.validate_dataset(dataset)
        z = dataset.X @ theta
        t = dataset.y.astype(np.float64)
        return (sigmoid(z) - t)[:, None] * dataset.X

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        z = dataset.X @ theta
        weights = sigmoid(z) * (1.0 - sigmoid(z))
        n, d = dataset.X.shape
        weighted = dataset.X * weights[:, None]
        return dataset.X.T @ weighted / n + self.regularization * np.eye(d)

    # ------------------------------------------------------------------
    # Prediction and diff
    # ------------------------------------------------------------------
    def predict_proba(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Positive-class probabilities ``σ(θᵀx)``."""
        return sigmoid(np.asarray(X, dtype=np.float64) @ np.asarray(theta, dtype=np.float64))

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(theta, X) >= 0.5).astype(np.int64)

    def predict_proba_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Positive-class probabilities for a ``(k, d)`` parameter batch.

        All k logit vectors come out of a single ``Thetas @ Xᵀ`` GEMM.
        """
        Thetas = self._as_parameter_batch(Thetas)
        return sigmoid(Thetas @ np.asarray(X, dtype=np.float64).T)

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba_many(Thetas, X) >= 0.5).astype(np.int64)

    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        predictions_a = self.predict(theta_a, dataset.X)
        predictions_b = self.predict(theta_b, dataset.X)
        return float(np.mean(predictions_a != predictions_b))

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        reference = self._reference_predictions(theta_ref, dataset.X)
        batch = self.predict_many(Thetas, dataset.X)  # (k, n)
        return np.mean(batch != reference[None, :], axis=1)

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        # One GEMM for both sides of every pair.
        stacked = np.concatenate([Thetas_a, Thetas_b], axis=0)
        labels = self.predict_many(stacked, dataset.X)
        k = Thetas_a.shape[0]
        return np.mean(labels[:k] != labels[k:], axis=1)

    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Streaming disagreement: integer mismatch counts per holdout block.

        Counts are exact, so the sharded result is bitwise identical to the
        materialised path regardless of block size.
        """
        del dataset  # disagreement needs no global holdout context
        return self._disagreement_accumulator(theta_ref, Thetas)

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        del dataset
        return self._pairwise_disagreement_accumulator(Thetas_a, Thetas_b)
