"""Model class specification (MCS) base class.

Section 2.2 of the paper defines the MCS as the minimal interface BlinkML
needs from a model family:

* ``grads`` — the list of per-example gradients ``q(θ; x_i, y_i) + r(θ)``
  (Equation (3)); BlinkML needs the individual values, not just their
  average, because ObservedFisher estimates the gradient covariance J from
  them;
* ``diff`` — the prediction difference between two parameter vectors on the
  holdout set, which is the quantity ``v(m_n)`` that the approximation
  contract bounds.

On top of those two, this implementation adds the pieces any real library
needs: the training objective (so the Model Trainer can run), predictions,
and a closed-form Hessian where one exists (so the ClosedForm statistics
method of Section 3.4 can be exercised).

Parameters are always exchanged as flat 1-D vectors; models that are
naturally matrix-shaped (max-entropy, PPCA) flatten and unflatten internally,
exactly as the paper describes in Appendix A.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.optim.base import Objective
from repro.optim.driver import minimize
from repro.optim.result import OptimizationResult


class DiffAccumulator(ABC):
    """Streaming accumulator for a batched model-difference metric.

    The streaming sharded holdout engine
    (:mod:`repro.evaluation.streaming`) shards the holdout into row blocks
    and feeds them to an accumulator one at a time, so the full
    ``(k, n_holdout)`` prediction block of the batched diff path never
    exists in memory — only O(k · block) lives at once.  An accumulator is
    created by :meth:`ModelClassSpec.diff_accumulator` /
    :meth:`ModelClassSpec.pairwise_diff_accumulator` with the parameter
    batch(es) bound in; the driver then calls :meth:`update` once per block
    (in holdout order) and :meth:`finalize` exactly once at the end.

    For parallel sharding the driver creates one accumulator per worker,
    gives each a contiguous range of blocks, and folds the partials together
    with :meth:`merge` in block order before finalizing.
    """

    #: set to False by accumulators whose metric does not depend on the
    #: holdout rows at all (e.g. PPCA's parameter-space cosine); the driver
    #: then skips the block loop entirely.
    needs_holdout_blocks: bool = True

    @abstractmethod
    def update(self, block: Dataset) -> None:
        """Fold one holdout row block into the running statistics."""

    @abstractmethod
    def merge(self, other: "DiffAccumulator") -> None:
        """Fold another accumulator's partial statistics into this one.

        ``other`` must come from the same factory call and have consumed a
        disjoint, later range of holdout blocks.
        """

    @abstractmethod
    def finalize(self) -> np.ndarray:
        """Return the per-candidate differences, shape ``(k,)``."""


class BlockSumDiffAccumulator(DiffAccumulator):
    """Accumulator for metrics that are a function of per-candidate row sums.

    Covers every mean-reduced metric in the library: classification
    disagreement (sum of mismatch indicators) and (normalised) RMS
    differences (sum of squared prediction gaps).  A family binds
    ``block_sums`` — a callable mapping a holdout block to the ``(k,)``
    per-candidate sums over that block — and ``reduce`` — a callable mapping
    the grand totals ``(sums, n_rows)`` to the final differences.
    """

    def __init__(
        self,
        n_candidates: int,
        block_sums: Callable[[Dataset], np.ndarray] | None,
        reduce: Callable[[np.ndarray, int], np.ndarray] | None,
    ):
        if n_candidates < 1:
            raise ModelSpecError("need at least one candidate parameter vector")
        self._sums = np.zeros(int(n_candidates), dtype=np.float64)
        self._rows = 0
        self._block_sums = block_sums
        self._reduce = reduce

    def update(self, block: Dataset) -> None:
        if self._block_sums is None:
            raise ModelSpecError(
                "this accumulator is a deserialized partial (process-backend "
                "return value): it can be merged into a full accumulator but "
                "not updated"
            )
        self._sums += np.asarray(self._block_sums(block), dtype=np.float64)
        self._rows += block.n_rows

    def merge(self, other: DiffAccumulator) -> None:
        if not isinstance(other, BlockSumDiffAccumulator):
            raise ModelSpecError("cannot merge accumulators of different kinds")
        self._sums += other._sums
        self._rows += other._rows

    def finalize(self) -> np.ndarray:
        if self._reduce is None:
            raise ModelSpecError(
                "this accumulator is a deserialized partial (process-backend "
                "return value): merge it into a full accumulator and finalize "
                "that instead"
            )
        if self._rows == 0:
            raise ModelSpecError("accumulator finalized before seeing any holdout rows")
        return np.asarray(self._reduce(self._sums, self._rows), dtype=np.float64)

    # ------------------------------------------------------------------
    # Process-backend transport: the grand totals travel, the closures do
    # not (they capture spec methods and are rebuilt from the spec on the
    # other side).  A restored instance is a merge *donor* only — exactly
    # what the streaming driver's merge-in-holdout-order path needs.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {"sums": self._sums, "rows": self._rows}

    def __setstate__(self, state: dict) -> None:
        self._sums = state["sums"]
        self._rows = state["rows"]
        self._block_sums = None
        self._reduce = None


class PrecomputedDiffAccumulator(DiffAccumulator):
    """Accumulator whose differences do not depend on the holdout rows.

    Two uses: parameter-space metrics (PPCA's aligned cosine) that are fully
    determined by the parameter batches, and the generic fallback for custom
    :class:`ModelClassSpec` subclasses without a streaming decomposition —
    the fallback evaluates the materialised batched diff on the full holdout
    up front, which preserves correctness but not the O(k · block) memory
    bound (documented in ``docs/architecture.md``).
    """

    needs_holdout_blocks = False

    def __init__(self, values: np.ndarray):
        self._values = np.asarray(values, dtype=np.float64)

    def update(self, block: Dataset) -> None:
        del block  # the metric is block-independent

    def merge(self, other: DiffAccumulator) -> None:
        if not isinstance(other, PrecomputedDiffAccumulator):
            raise ModelSpecError("cannot merge accumulators of different kinds")

    def finalize(self) -> np.ndarray:
        return self._values


def holdout_label_scale(dataset: Any, family: str) -> float:
    """Label standard deviation normalising a regression diff metric.

    One implementation for every normalised regression family (linear,
    Poisson) so the scale contract cannot silently diverge between them.
    Block sources (:class:`repro.data.store.ShardedDataset`) expose the
    scale through precomputed manifest moments (``label_std()`` — O(1), no
    label I/O, equal to ``np.std`` of the materialised labels to a few
    ulps); in-memory datasets compute ``np.std(y)`` directly.  (Near-)zero
    scales fall back to 1.0 to avoid dividing by zero on constant labels.
    """
    # Supervision is checked first so the unlabeled-holdout misuse raises
    # the same ModelSpecError whichever storage tier the holdout lives in
    # (a sharded source's label_std() would otherwise surface a DataError
    # about manifest moments instead of explaining the missing labels).
    if not getattr(dataset, "is_supervised", True):
        raise ModelSpecError(
            f"normalised {family} difference needs holdout labels for scaling"
        )
    label_std = getattr(dataset, "label_std", None)
    if callable(label_std):
        scale = float(label_std())
        return scale if scale > 0 else 1.0
    if dataset.y is None:
        raise ModelSpecError(
            f"normalised {family} difference needs holdout labels for scaling"
        )
    scale = float(np.std(dataset.y))
    return scale if scale > 0 else 1.0


def materialize_if_sharded(dataset: Any) -> Dataset:
    """An in-memory :class:`Dataset` for ``dataset``, whatever it is.

    Block sources (e.g. :class:`repro.data.store.ShardedDataset`) expose a
    ``materialize()`` method; in-memory datasets pass through untouched.
    This is the correctness escape hatch for code that genuinely needs the
    whole feature matrix — notably the generic accumulator fallbacks for
    custom model specs without a streaming decomposition — and it
    deliberately trades the out-of-core memory bound for compatibility.
    """
    materialize = getattr(dataset, "materialize", None)
    if callable(materialize):
        return materialize()
    return dataset


class _ReferenceMemo(threading.local):
    """Per-thread one-slot memo for :meth:`ModelClassSpec._reference_predictions`.

    Spec objects are shared by estimators, sessions and streaming worker
    threads; a single shared slot would let two threads working on
    different (θ, X) pairs evict each other's entry on every call (and,
    without the GIL, publish a torn entry).  ``threading.local`` gives each
    thread its own slot: no synchronisation on the hot path, no cross-thread
    interference, and each streaming worker keeps its memo effective.
    """

    def __init__(self) -> None:
        self.entry: tuple[bytes, np.ndarray, np.ndarray] | None = None


class ModelClassSpec(ABC):
    """Abstract base class for every supported model family."""

    #: one of "regression", "binary", "multiclass", "unsupervised"
    task: str = "regression"
    #: short name used by the registry and in reports (e.g. "lr")
    name: str = "model"

    def __init__(self, regularization: float = 0.0):
        if regularization < 0:
            raise ModelSpecError("regularization coefficient must be non-negative")
        self.regularization = float(regularization)
        # Per-thread one-slot memo for the reference predictions of the
        # batched diff path: (theta bytes, feature-matrix identity) ->
        # predictions.  The feature matrix is kept alive by the memo entry
        # itself, so the identity check cannot alias a recycled object.
        self._reference_cache = _ReferenceMemo()

    # ------------------------------------------------------------------
    # Pickling (the process streaming backend ships specs to its workers):
    # the per-thread memo is a threading.local and cannot cross a process
    # boundary, so it is dropped and rebuilt empty on the other side —
    # losing one memoised prediction, never correctness.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_reference_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._reference_cache = _ReferenceMemo()

    # ------------------------------------------------------------------
    # Parameter bookkeeping
    # ------------------------------------------------------------------
    @abstractmethod
    def n_parameters(self, dataset: Dataset) -> int:
        """Dimension of the flattened parameter vector θ for this dataset."""

    def initial_parameters(self, dataset: Dataset, rng: np.random.Generator | None = None) -> np.ndarray:
        """Deterministic-by-default starting point for the optimizer."""
        del rng
        return np.zeros(self.n_parameters(dataset))

    # ------------------------------------------------------------------
    # MLE objective pieces (Equations (1)-(3))
    # ------------------------------------------------------------------
    @abstractmethod
    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        """The objective ``f_n(θ)``: average negative log-likelihood + R(θ)."""

    @abstractmethod
    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The ``(n, p)`` matrix whose i-th row is ``q(θ; x_i, y_i)``.

        These are the *unregularised* per-example gradients; the regulariser
        gradient ``r(θ)`` is added separately (it does not vary across
        examples and therefore contributes nothing to the covariance J).

        Implementations must be *row-decomposable*: the gradient of row i
        may depend on θ and on row i only, never on the other rows in
        ``dataset``.  The streaming statistics tier
        (:mod:`repro.core.statistics`) relies on this to evaluate the
        method block-by-block over a sharded store and fold the blocks into
        a moment summary — calling it on a block must yield exactly the
        corresponding rows of the full-matrix call.
        """

    def regularizer_gradient(self, theta: np.ndarray) -> np.ndarray:
        """``r(θ) = ∇R(θ)``; L2 by default: ``βθ``."""
        return self.regularization * np.asarray(theta, dtype=np.float64)

    def gradient(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The full gradient ``g_n(θ)`` = mean per-example gradient + r(θ)."""
        per_example = self.per_example_gradients(theta, dataset)
        return per_example.mean(axis=0) + self.regularizer_gradient(theta)

    def grads(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The MCS ``grads`` function from Section 2.2.

        Returns the list of ``q(θ; x_i, y_i) + r(θ)`` for i = 1..n as an
        ``(n, p)`` matrix.
        """
        per_example = self.per_example_gradients(theta, dataset)
        return per_example + self.regularizer_gradient(theta)[None, :]

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Analytic Hessian of ``f_n`` (ClosedForm path).

        Subclasses with a tractable closed form override this; others raise,
        in which case BlinkML falls back to InverseGradients or
        ObservedFisher, exactly as discussed in Section 3.4.
        """
        raise ModelSpecError(
            f"{type(self).__name__} does not provide a closed-form Hessian"
        )

    @property
    def has_closed_form_hessian(self) -> bool:
        """Whether :meth:`hessian` is implemented for this model family."""
        return type(self).hessian is not ModelClassSpec.hessian

    # ------------------------------------------------------------------
    # Prediction and the `diff` metric (Section 2.1, Appendix C)
    # ------------------------------------------------------------------
    @abstractmethod
    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Model predictions ``m(x; θ)`` for each row of ``X``."""

    @abstractmethod
    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        """The ``diff`` function: ``v`` between two parameter vectors.

        Classification models return the disagreement probability on the
        holdout set; regression returns the (normalised) RMS prediction
        difference; PPCA returns ``1 − cosine(θ_a, θ_b)``.
        """

    # ------------------------------------------------------------------
    # Batched parameter evaluation
    #
    # The accuracy and sample-size estimators evaluate the MCS ``diff``
    # function against k = O(100) sampled parameter vectors at every
    # estimate and every binary-search probe.  The methods below expose that
    # inner loop as a set-at-a-time operation so model families can replace
    # k separate predict calls with a single ``X @ Thetas.T``-style GEMM.
    # The generic implementations fall back to the per-pair loop, so custom
    # ModelClassSpec subclasses that only implement ``predict`` and
    # ``prediction_difference`` keep working unchanged.
    # ------------------------------------------------------------------
    def _as_parameter_batch(self, Thetas: np.ndarray) -> np.ndarray:
        """Validate and coerce a stack of parameter vectors to ``(k, p)``."""
        Thetas = np.asarray(Thetas, dtype=np.float64)
        if Thetas.ndim != 2:
            raise ModelSpecError(
                f"expected a (k, p) batch of parameter vectors, got shape {Thetas.shape}"
            )
        return Thetas

    def _as_paired_batches(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate two parameter batches that must match pair for pair."""
        Thetas_a = self._as_parameter_batch(Thetas_a)
        Thetas_b = self._as_parameter_batch(Thetas_b)
        if Thetas_a.shape != Thetas_b.shape:
            raise ModelSpecError(
                f"paired parameter batches must have matching shapes; got "
                f"{Thetas_a.shape} and {Thetas_b.shape}"
            )
        return Thetas_a, Thetas_b

    def _reference_predictions(self, theta_ref: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predictions of the reference θ, memoised across consecutive calls.

        The batched diff path evaluates many candidate parameter vectors
        against the *same* reference θ on the *same* holdout features, so the
        reference predictions are computed once per (θ, X) pair instead of
        once per candidate.

        The memo hit test is ``X is cached_X`` plus the θ bytes, which
        relies on :class:`~repro.data.dataset.Dataset`'s documented
        immutability: mutating a feature matrix in place and re-passing the
        same array object would return stale predictions.  Build a new
        Dataset (the library-wide convention) instead of mutating buffers.

        The memo is **per thread** (:class:`_ReferenceMemo`): spec objects
        are shared across estimator, session and streaming worker threads,
        and a shared slot would thrash (or tear, on free-threaded builds)
        under concurrent use with different (θ, X) pairs.
        """
        theta_ref = np.asarray(theta_ref, dtype=np.float64)
        key = theta_ref.tobytes()
        # getattr guards custom specs whose __init__ skips super().__init__
        # (installing lazily is a benign race: a lost slot only costs one
        # memoised prediction, never correctness).
        memo = getattr(self, "_reference_cache", None)
        if not isinstance(memo, _ReferenceMemo):
            memo = _ReferenceMemo()
            self._reference_cache = memo
        entry = memo.entry
        if entry is not None and entry[0] == key and entry[1] is X:
            return entry[2]
        predictions = self.predict(theta_ref, X)
        memo.entry = (key, X, predictions)
        return predictions

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predictions for each parameter vector in the ``(k, p)`` batch.

        Returns an array whose leading axis indexes the k parameter vectors;
        entry i equals ``predict(Thetas[i], X)``.  Vectorised overrides
        compute all k prediction sets in one BLAS-level matrix product.
        """
        Thetas = self._as_parameter_batch(Thetas)
        return np.stack([self.predict(theta, X) for theta in Thetas])

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        """Batched ``diff``: ``v(θ_ref, Thetas[i])`` for each i, shape ``(k,)``.

        This is the accuracy-estimator inner loop (Section 3.3 step 2): one
        reference model against k sampled full-model parameters.
        """
        Thetas = self._as_parameter_batch(Thetas)
        theta_ref = np.asarray(theta_ref, dtype=np.float64)
        return np.array(
            [self.prediction_difference(theta_ref, theta, dataset) for theta in Thetas],
            dtype=np.float64,
        )

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        """Elementwise batched ``diff``: ``v(Thetas_a[i], Thetas_b[i])``.

        This is the sample-size-estimator inner loop (Section 4.1): the k
        two-stage pairs ``(θ_n,i, θ_N,i)`` are compared pair by pair at every
        binary-search probe.
        """
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        return np.array(
            [
                self.prediction_difference(theta_a, theta_b, dataset)
                for theta_a, theta_b in zip(Thetas_a, Thetas_b)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Streaming sharded holdout evaluation
    #
    # The batched methods above still materialise the full (k, n_holdout)
    # prediction block.  The factories below instead hand back a
    # DiffAccumulator that the streaming engine
    # (repro.evaluation.streaming) drives block by block, keeping memory
    # at O(k · block).  The five built-in families override them with
    # disagreement-count / squared-error-sum accumulators; the generic
    # fallbacks evaluate the materialised batched diff once so any custom
    # spec keeps working (correct, but without the memory bound).
    # ------------------------------------------------------------------
    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Accumulator computing ``prediction_differences`` block by block.

        ``dataset`` is the *full* holdout: factories may read global context
        from it (e.g. the label scale of normalised regression metrics) but
        must not evaluate predictions on it — rows arrive via ``update``.
        It may also be a block source (:class:`repro.data.store.ShardedDataset`);
        this generic fallback then materialises it once, preserving
        correctness for custom specs at the cost of the memory bound (the
        built-in families override with true streaming decompositions).
        """
        return PrecomputedDiffAccumulator(
            self.prediction_differences(
                theta_ref, Thetas, materialize_if_sharded(dataset)
            )
        )

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Accumulator computing ``pairwise_prediction_differences`` blockwise."""
        return PrecomputedDiffAccumulator(
            self.pairwise_prediction_differences(
                Thetas_a, Thetas_b, materialize_if_sharded(dataset)
            )
        )

    # ------------------------------------------------------------------
    # Shared accumulator builders for the two metric shapes every built-in
    # family reduces to: mean prediction disagreement (classification) and
    # (normalised) RMS prediction gap (regression).  Families call these
    # from their diff_accumulator overrides so the blockwise decomposition
    # lives in exactly one place.
    # ------------------------------------------------------------------
    def _disagreement_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray
    ) -> DiffAccumulator:
        """Blockwise mean-disagreement vs one reference θ (exact counts)."""
        Thetas = self._as_parameter_batch(Thetas)
        theta_ref = np.asarray(theta_ref, dtype=np.float64)

        def block_sums(block: Dataset) -> np.ndarray:
            reference = self.predict(theta_ref, block.X)
            return np.count_nonzero(
                self.predict_many(Thetas, block.X) != reference[None, :], axis=1
            )

        return BlockSumDiffAccumulator(
            Thetas.shape[0], block_sums, lambda sums, rows: sums / rows
        )

    def _pairwise_disagreement_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray
    ) -> DiffAccumulator:
        """Blockwise mean-disagreement between matched parameter pairs."""
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        stacked = np.concatenate([Thetas_a, Thetas_b], axis=0)
        k = Thetas_a.shape[0]

        def block_sums(block: Dataset) -> np.ndarray:
            labels = self.predict_many(stacked, block.X)
            return np.count_nonzero(labels[:k] != labels[k:], axis=1)

        return BlockSumDiffAccumulator(k, block_sums, lambda sums, rows: sums / rows)

    def _rms_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, scale: float
    ) -> DiffAccumulator:
        """Blockwise ``sqrt(mean((pred − ref)²)) / scale`` vs one reference θ."""
        Thetas = self._as_parameter_batch(Thetas)
        theta_ref = np.asarray(theta_ref, dtype=np.float64)

        def block_sums(block: Dataset) -> np.ndarray:
            gaps = self.predict_many(Thetas, block.X) - self.predict(theta_ref, block.X)[None, :]
            return np.einsum("kn,kn->k", gaps, gaps)

        return BlockSumDiffAccumulator(
            Thetas.shape[0], block_sums, lambda sums, rows: np.sqrt(sums / rows) / scale
        )

    def _pairwise_rms_accumulator(
        self,
        Thetas_a: np.ndarray,
        Thetas_b: np.ndarray,
        scale: float,
        linear_predictions: bool = False,
    ) -> DiffAccumulator:
        """Blockwise normalised RMS gap between matched parameter pairs.

        ``linear_predictions=True`` exploits prediction linearity in θ: the
        per-pair gaps collapse to one GEMM over the parameter deltas.
        """
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        k = Thetas_a.shape[0]
        if linear_predictions:
            deltas = Thetas_a - Thetas_b

            def block_sums(block: Dataset) -> np.ndarray:
                gaps = self.predict_many(deltas, block.X)
                return np.einsum("kn,kn->k", gaps, gaps)
        else:
            stacked = np.concatenate([Thetas_a, Thetas_b], axis=0)

            def block_sums(block: Dataset) -> np.ndarray:
                predictions = self.predict_many(stacked, block.X)
                gaps = predictions[:k] - predictions[k:]
                return np.einsum("kn,kn->k", gaps, gaps)

        return BlockSumDiffAccumulator(
            k, block_sums, lambda sums, rows: np.sqrt(sums / rows) / scale
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def objective(self, dataset: Dataset) -> Objective:
        """Wrap this model + dataset pair as an optimizer objective."""
        return _ModelObjective(self, dataset)

    def fit(
        self,
        dataset: Dataset,
        method: str | None = None,
        theta0: np.ndarray | None = None,
        **optimizer_kwargs: Any,
    ) -> TrainedModel:
        """Train on ``dataset`` and return a :class:`TrainedModel`.

        ``method`` follows :func:`repro.optim.minimize`; when ``None`` the
        paper's dimension-based BFGS / L-BFGS rule is applied.
        """
        if theta0 is None:
            theta0 = self.initial_parameters(dataset)
        result = minimize(self.objective(dataset), theta0, method=method, **optimizer_kwargs)
        return TrainedModel(spec=self, theta=result.theta, n_train=dataset.n_rows, optimization=result)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def validate_dataset(self, dataset: Dataset) -> None:
        """Raise :class:`ModelSpecError` when the dataset does not fit the task."""
        if self.task in {"regression", "binary", "multiclass"} and not dataset.is_supervised:
            raise ModelSpecError(f"{self.name} requires labels but the dataset has none")

    def describe(self) -> dict:
        """Lightweight description used by reports."""
        return {"model": self.name, "task": self.task, "regularization": self.regularization}


class _ModelObjective(Objective):
    """Adapter exposing a (spec, dataset) pair through the optimizer interface."""

    def __init__(self, spec: ModelClassSpec, dataset: Dataset):
        self._spec = spec
        self._dataset = dataset

    def value(self, theta: np.ndarray) -> float:
        return self._spec.loss(theta, self._dataset)

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        return self._spec.gradient(theta, self._dataset)

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        return (
            self._spec.loss(theta, self._dataset),
            self._spec.gradient(theta, self._dataset),
        )

    def hessian(self, theta: np.ndarray) -> np.ndarray:
        return self._spec.hessian(theta, self._dataset)


@dataclass
class TrainedModel:
    """A fitted model: the spec plus the learned parameter vector.

    This is what the coordinator returns (wrapped in an
    :class:`repro.core.result.ApproximateTrainingResult`) and what the
    baselines and the hyperparameter harness consume.
    """

    spec: ModelClassSpec
    theta: np.ndarray
    n_train: int
    optimization: OptimizationResult | None = None
    metadata: dict = field(default_factory=dict)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions of the fitted model on a feature matrix."""
        return self.spec.predict(self.theta, X)

    def difference(self, other: TrainedModel, dataset: Dataset) -> float:
        """Prediction difference ``v`` between this model and ``other``."""
        if type(self.spec) is not type(other.spec):
            raise ModelSpecError("cannot compare models from different model classes")
        return self.spec.prediction_difference(self.theta, other.theta, dataset)

    @property
    def n_parameters(self) -> int:
        return int(self.theta.shape[0])
