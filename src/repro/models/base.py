"""Model class specification (MCS) base class.

Section 2.2 of the paper defines the MCS as the minimal interface BlinkML
needs from a model family:

* ``grads`` — the list of per-example gradients ``q(θ; x_i, y_i) + r(θ)``
  (Equation (3)); BlinkML needs the individual values, not just their
  average, because ObservedFisher estimates the gradient covariance J from
  them;
* ``diff`` — the prediction difference between two parameter vectors on the
  holdout set, which is the quantity ``v(m_n)`` that the approximation
  contract bounds.

On top of those two, this implementation adds the pieces any real library
needs: the training objective (so the Model Trainer can run), predictions,
and a closed-form Hessian where one exists (so the ClosedForm statistics
method of Section 3.4 can be exercised).

Parameters are always exchanged as flat 1-D vectors; models that are
naturally matrix-shaped (max-entropy, PPCA) flatten and unflatten internally,
exactly as the paper describes in Appendix A.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.optim.base import Objective
from repro.optim.driver import minimize
from repro.optim.result import OptimizationResult


class ModelClassSpec(ABC):
    """Abstract base class for every supported model family."""

    #: one of "regression", "binary", "multiclass", "unsupervised"
    task: str = "regression"
    #: short name used by the registry and in reports (e.g. "lr")
    name: str = "model"

    def __init__(self, regularization: float = 0.0):
        if regularization < 0:
            raise ModelSpecError("regularization coefficient must be non-negative")
        self.regularization = float(regularization)
        # One-slot memo for the reference predictions of the batched diff
        # path: (theta bytes, feature-matrix identity) -> predictions.  The
        # feature matrix is kept alive by the cache entry itself, so the
        # identity check cannot alias a recycled object.
        self._reference_cache: tuple[bytes, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Parameter bookkeeping
    # ------------------------------------------------------------------
    @abstractmethod
    def n_parameters(self, dataset: Dataset) -> int:
        """Dimension of the flattened parameter vector θ for this dataset."""

    def initial_parameters(self, dataset: Dataset, rng: np.random.Generator | None = None) -> np.ndarray:
        """Deterministic-by-default starting point for the optimizer."""
        del rng
        return np.zeros(self.n_parameters(dataset))

    # ------------------------------------------------------------------
    # MLE objective pieces (Equations (1)-(3))
    # ------------------------------------------------------------------
    @abstractmethod
    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        """The objective ``f_n(θ)``: average negative log-likelihood + R(θ)."""

    @abstractmethod
    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The ``(n, p)`` matrix whose i-th row is ``q(θ; x_i, y_i)``.

        These are the *unregularised* per-example gradients; the regulariser
        gradient ``r(θ)`` is added separately (it does not vary across
        examples and therefore contributes nothing to the covariance J).
        """

    def regularizer_gradient(self, theta: np.ndarray) -> np.ndarray:
        """``r(θ) = ∇R(θ)``; L2 by default: ``βθ``."""
        return self.regularization * np.asarray(theta, dtype=np.float64)

    def gradient(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The full gradient ``g_n(θ)`` = mean per-example gradient + r(θ)."""
        per_example = self.per_example_gradients(theta, dataset)
        return per_example.mean(axis=0) + self.regularizer_gradient(theta)

    def grads(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """The MCS ``grads`` function from Section 2.2.

        Returns the list of ``q(θ; x_i, y_i) + r(θ)`` for i = 1..n as an
        ``(n, p)`` matrix.
        """
        per_example = self.per_example_gradients(theta, dataset)
        return per_example + self.regularizer_gradient(theta)[None, :]

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        """Analytic Hessian of ``f_n`` (ClosedForm path).

        Subclasses with a tractable closed form override this; others raise,
        in which case BlinkML falls back to InverseGradients or
        ObservedFisher, exactly as discussed in Section 3.4.
        """
        raise ModelSpecError(
            f"{type(self).__name__} does not provide a closed-form Hessian"
        )

    @property
    def has_closed_form_hessian(self) -> bool:
        """Whether :meth:`hessian` is implemented for this model family."""
        return type(self).hessian is not ModelClassSpec.hessian

    # ------------------------------------------------------------------
    # Prediction and the `diff` metric (Section 2.1, Appendix C)
    # ------------------------------------------------------------------
    @abstractmethod
    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Model predictions ``m(x; θ)`` for each row of ``X``."""

    @abstractmethod
    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        """The ``diff`` function: ``v`` between two parameter vectors.

        Classification models return the disagreement probability on the
        holdout set; regression returns the (normalised) RMS prediction
        difference; PPCA returns ``1 − cosine(θ_a, θ_b)``.
        """

    # ------------------------------------------------------------------
    # Batched parameter evaluation
    #
    # The accuracy and sample-size estimators evaluate the MCS ``diff``
    # function against k = O(100) sampled parameter vectors at every
    # estimate and every binary-search probe.  The methods below expose that
    # inner loop as a set-at-a-time operation so model families can replace
    # k separate predict calls with a single ``X @ Thetas.T``-style GEMM.
    # The generic implementations fall back to the per-pair loop, so custom
    # ModelClassSpec subclasses that only implement ``predict`` and
    # ``prediction_difference`` keep working unchanged.
    # ------------------------------------------------------------------
    def _as_parameter_batch(self, Thetas: np.ndarray) -> np.ndarray:
        """Validate and coerce a stack of parameter vectors to ``(k, p)``."""
        Thetas = np.asarray(Thetas, dtype=np.float64)
        if Thetas.ndim != 2:
            raise ModelSpecError(
                f"expected a (k, p) batch of parameter vectors, got shape {Thetas.shape}"
            )
        return Thetas

    def _as_paired_batches(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate two parameter batches that must match pair for pair."""
        Thetas_a = self._as_parameter_batch(Thetas_a)
        Thetas_b = self._as_parameter_batch(Thetas_b)
        if Thetas_a.shape != Thetas_b.shape:
            raise ModelSpecError(
                f"paired parameter batches must have matching shapes; got "
                f"{Thetas_a.shape} and {Thetas_b.shape}"
            )
        return Thetas_a, Thetas_b

    def _reference_predictions(self, theta_ref: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predictions of the reference θ, memoised across consecutive calls.

        The batched diff path evaluates many candidate parameter vectors
        against the *same* reference θ on the *same* holdout features, so the
        reference predictions are computed once per (θ, X) pair instead of
        once per candidate.

        The memo hit test is ``X is cached_X`` plus the θ bytes, which
        relies on :class:`~repro.data.dataset.Dataset`'s documented
        immutability: mutating a feature matrix in place and re-passing the
        same array object would return stale predictions.  Build a new
        Dataset (the library-wide convention) instead of mutating buffers.
        """
        theta_ref = np.asarray(theta_ref, dtype=np.float64)
        key = theta_ref.tobytes()
        # getattr guards custom specs whose __init__ skips super().__init__.
        cached = getattr(self, "_reference_cache", None)
        if cached is not None and cached[0] == key and cached[1] is X:
            return cached[2]
        predictions = self.predict(theta_ref, X)
        self._reference_cache = (key, X, predictions)
        return predictions

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predictions for each parameter vector in the ``(k, p)`` batch.

        Returns an array whose leading axis indexes the k parameter vectors;
        entry i equals ``predict(Thetas[i], X)``.  Vectorised overrides
        compute all k prediction sets in one BLAS-level matrix product.
        """
        Thetas = self._as_parameter_batch(Thetas)
        return np.stack([self.predict(theta, X) for theta in Thetas])

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        """Batched ``diff``: ``v(θ_ref, Thetas[i])`` for each i, shape ``(k,)``.

        This is the accuracy-estimator inner loop (Section 3.3 step 2): one
        reference model against k sampled full-model parameters.
        """
        Thetas = self._as_parameter_batch(Thetas)
        theta_ref = np.asarray(theta_ref, dtype=np.float64)
        return np.array(
            [self.prediction_difference(theta_ref, theta, dataset) for theta in Thetas],
            dtype=np.float64,
        )

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        """Elementwise batched ``diff``: ``v(Thetas_a[i], Thetas_b[i])``.

        This is the sample-size-estimator inner loop (Section 4.1): the k
        two-stage pairs ``(θ_n,i, θ_N,i)`` are compared pair by pair at every
        binary-search probe.
        """
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        return np.array(
            [
                self.prediction_difference(theta_a, theta_b, dataset)
                for theta_a, theta_b in zip(Thetas_a, Thetas_b)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def objective(self, dataset: Dataset) -> Objective:
        """Wrap this model + dataset pair as an optimizer objective."""
        return _ModelObjective(self, dataset)

    def fit(
        self,
        dataset: Dataset,
        method: str | None = None,
        theta0: np.ndarray | None = None,
        **optimizer_kwargs,
    ) -> TrainedModel:
        """Train on ``dataset`` and return a :class:`TrainedModel`.

        ``method`` follows :func:`repro.optim.minimize`; when ``None`` the
        paper's dimension-based BFGS / L-BFGS rule is applied.
        """
        if theta0 is None:
            theta0 = self.initial_parameters(dataset)
        result = minimize(self.objective(dataset), theta0, method=method, **optimizer_kwargs)
        return TrainedModel(spec=self, theta=result.theta, n_train=dataset.n_rows, optimization=result)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def validate_dataset(self, dataset: Dataset) -> None:
        """Raise :class:`ModelSpecError` when the dataset does not fit the task."""
        if self.task in {"regression", "binary", "multiclass"} and not dataset.is_supervised:
            raise ModelSpecError(f"{self.name} requires labels but the dataset has none")

    def describe(self) -> dict:
        """Lightweight description used by reports."""
        return {"model": self.name, "task": self.task, "regularization": self.regularization}


class _ModelObjective(Objective):
    """Adapter exposing a (spec, dataset) pair through the optimizer interface."""

    def __init__(self, spec: ModelClassSpec, dataset: Dataset):
        self._spec = spec
        self._dataset = dataset

    def value(self, theta: np.ndarray) -> float:
        return self._spec.loss(theta, self._dataset)

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        return self._spec.gradient(theta, self._dataset)

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        return (
            self._spec.loss(theta, self._dataset),
            self._spec.gradient(theta, self._dataset),
        )

    def hessian(self, theta: np.ndarray) -> np.ndarray:
        return self._spec.hessian(theta, self._dataset)


@dataclass
class TrainedModel:
    """A fitted model: the spec plus the learned parameter vector.

    This is what the coordinator returns (wrapped in an
    :class:`repro.core.result.ApproximateTrainingResult`) and what the
    baselines and the hyperparameter harness consume.
    """

    spec: ModelClassSpec
    theta: np.ndarray
    n_train: int
    optimization: OptimizationResult | None = None
    metadata: dict = field(default_factory=dict)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions of the fitted model on a feature matrix."""
        return self.spec.predict(self.theta, X)

    def difference(self, other: TrainedModel, dataset: Dataset) -> float:
        """Prediction difference ``v`` between this model and ``other``."""
        if type(self.spec) is not type(other.spec):
            raise ModelSpecError("cannot compare models from different model classes")
        return self.spec.prediction_difference(self.theta, other.theta, dataset)

    @property
    def n_parameters(self) -> int:
        return int(self.theta.shape[0])
