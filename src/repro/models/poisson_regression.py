"""Poisson regression model class specification.

The paper lists Poisson regression among the generalized linear models that
BlinkML's MLE abstraction covers (Section 1 and 2.2); this module provides
it so the library exercises a GLM with a non-Gaussian, non-Bernoulli
likelihood.

The model is ``y_i ~ Poisson(exp(θᵀx_i))``.  Its L2-regularised negative
log-likelihood (dropping the θ-independent ``log y!`` term) is

    f_n(θ) = (1/n) Σ [ exp(θᵀx_i) − y_i θᵀx_i ] + (β/2) ‖θ‖²

with per-example gradient ``q(θ; x_i, y_i) = (exp(θᵀx_i) − y_i) x_i`` and
closed-form Hessian ``H(θ) = (1/n) Σ exp(θᵀx_i) x_i x_iᵀ + βI`` — so, like
linear and logistic regression, Poisson regression supports all three
statistics-computation methods.

The model-difference metric follows the regression convention of
Appendix C: the RMS difference between the two models' predicted rates,
normalised by the standard deviation of the holdout counts.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import (
    DiffAccumulator,
    ModelClassSpec,
    holdout_label_scale,
)

#: linear predictors are clipped to this magnitude before exponentiation so a
#: wild parameter probe cannot overflow ``exp``.
_MAX_LOG_RATE = 30.0


class PoissonRegressionSpec(ModelClassSpec):
    """L2-regularised Poisson (log-linear) regression for count targets."""

    task = "regression"
    name = "poisson"

    def __init__(self, regularization: float = 1e-3, normalize_difference: bool = True):
        super().__init__(regularization=regularization)
        self.normalize_difference = normalize_difference

    # ------------------------------------------------------------------
    # Parameters and validation
    # ------------------------------------------------------------------
    def n_parameters(self, dataset: Dataset) -> int:
        return dataset.n_features

    def validate_dataset(self, dataset: Dataset) -> None:
        super().validate_dataset(dataset)
        if np.any(dataset.y < 0):
            raise ModelSpecError("Poisson regression expects non-negative count labels")

    # ------------------------------------------------------------------
    # Objective pieces
    # ------------------------------------------------------------------
    def _rates(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        log_rates = np.clip(X @ theta, -_MAX_LOG_RATE, _MAX_LOG_RATE)
        return np.exp(log_rates)

    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        self.validate_dataset(dataset)
        log_rates = np.clip(dataset.X @ theta, -_MAX_LOG_RATE, _MAX_LOG_RATE)
        data_term = float(np.mean(np.exp(log_rates) - dataset.y * log_rates))
        reg_term = 0.5 * self.regularization * float(theta @ theta)
        return data_term + reg_term

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        self.validate_dataset(dataset)
        rates = self._rates(theta, dataset.X)
        return (rates - dataset.y)[:, None] * dataset.X

    def hessian(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        rates = self._rates(theta, dataset.X)
        n, d = dataset.X.shape
        weighted = dataset.X * rates[:, None]
        return dataset.X.T @ weighted / n + self.regularization * np.eye(d)

    # ------------------------------------------------------------------
    # Prediction and diff
    # ------------------------------------------------------------------
    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predicted Poisson rates ``exp(θᵀx)`` for each row of ``X``."""
        return self._rates(np.asarray(theta, dtype=np.float64), np.asarray(X, dtype=np.float64))

    def predict_many(self, Thetas: np.ndarray, X: np.ndarray) -> np.ndarray:
        Thetas = self._as_parameter_batch(Thetas)
        # All k log-rate vectors in one GEMM, then a single clipped exp.
        log_rates = np.clip(
            Thetas @ np.asarray(X, dtype=np.float64).T, -_MAX_LOG_RATE, _MAX_LOG_RATE
        )
        return np.exp(log_rates)

    def _difference_scale(self, dataset: Dataset) -> float:
        if not self.normalize_difference:
            return 1.0
        return holdout_label_scale(dataset, "Poisson")

    def prediction_difference(
        self, theta_a: np.ndarray, theta_b: np.ndarray, dataset: Dataset
    ) -> float:
        rates_a = self.predict(theta_a, dataset.X)
        rates_b = self.predict(theta_b, dataset.X)
        rms = float(np.sqrt(np.mean((rates_a - rates_b) ** 2)))
        return rms / self._difference_scale(dataset)

    def prediction_differences(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        reference = self._reference_predictions(theta_ref, dataset.X)
        batch = self.predict_many(Thetas, dataset.X)
        rms = np.sqrt(np.mean((batch - reference[None, :]) ** 2, axis=1))
        return rms / self._difference_scale(dataset)

    def pairwise_prediction_differences(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> np.ndarray:
        Thetas_a, Thetas_b = self._as_paired_batches(Thetas_a, Thetas_b)
        # The rate map is nonlinear, so both sides are evaluated — still in
        # a single stacked GEMM.
        rates = self.predict_many(np.concatenate([Thetas_a, Thetas_b], axis=0), dataset.X)
        k = Thetas_a.shape[0]
        rms = np.sqrt(np.mean((rates[:k] - rates[k:]) ** 2, axis=1))
        return rms / self._difference_scale(dataset)

    def diff_accumulator(
        self, theta_ref: np.ndarray, Thetas: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        """Streaming RMS rate gap: per-block squared-error sums."""
        return self._rms_accumulator(theta_ref, Thetas, self._difference_scale(dataset))

    def pairwise_diff_accumulator(
        self, Thetas_a: np.ndarray, Thetas_b: np.ndarray, dataset: Dataset
    ) -> DiffAccumulator:
        # The rate map is nonlinear, so both sides of every pair are
        # evaluated per block — still one stacked GEMM per block.
        return self._pairwise_rms_accumulator(
            Thetas_a, Thetas_b, self._difference_scale(dataset)
        )

    def describe(self) -> dict:
        description = super().describe()
        description["normalize_difference"] = self.normalize_difference
        return description
