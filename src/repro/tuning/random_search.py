"""Random-search driver comparing full training with BlinkML training.

Section 5.7: both strategies consume the *same* candidate sequence; the
traditional approach trains an exact model per candidate while BlinkML
trains a 95 %-accurate approximate model.  Because every approximate model
is dramatically cheaper, BlinkML evaluates orders of magnitude more
candidates within the same wall-clock budget (961 vs. 3 in the paper).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_DELTA
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.base import ModelClassSpec
from repro.tuning.search_space import HyperparameterCandidate


@dataclass
class SearchTrial:
    """Outcome of evaluating one hyperparameter candidate."""

    candidate: HyperparameterCandidate
    test_accuracy: float
    training_seconds: float
    cumulative_seconds: float
    sample_size: int
    strategy: str


@dataclass
class SearchResult:
    """All trials of one random-search run plus the best one found."""

    strategy: str
    trials: list[SearchTrial] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def best_trial(self) -> SearchTrial | None:
        if not self.trials:
            return None
        return max(self.trials, key=lambda trial: trial.test_accuracy)

    def accuracy_over_time(self) -> list[tuple[float, float]]:
        """(cumulative seconds, best-so-far accuracy) series for Figure 10."""
        series = []
        best = -np.inf
        for trial in self.trials:
            best = max(best, trial.test_accuracy)
            series.append((trial.cumulative_seconds, best))
        return series


class RandomSearch:
    """Evaluate a candidate sequence with either full or BlinkML training.

    Parameters
    ----------
    spec_factory:
        Callable mapping a regularisation coefficient to a fresh model spec
        (e.g. ``lambda reg: LogisticRegressionSpec(regularization=reg)``).
    train / holdout / test:
        Data splits.  Candidates select feature subsets of these.
    contract:
        Approximation contract used by the BlinkML strategy (95 % / δ=0.05
        in the paper).
    initial_sample_size / n_parameter_samples / seed:
        Forwarded to the BlinkML coordinator.
    """

    def __init__(
        self,
        spec_factory: Callable[[float], ModelClassSpec],
        train: Dataset,
        holdout: Dataset,
        test: Dataset,
        contract: ApproximationContract | None = None,
        initial_sample_size: int = 2_000,
        n_parameter_samples: int = 64,
        seed: int | None = 0,
    ):
        self.spec_factory = spec_factory
        self.train = train
        self.holdout = holdout
        self.test = test
        self.contract = contract or ApproximationContract(epsilon=0.05, delta=DEFAULT_DELTA)
        self.initial_sample_size = initial_sample_size
        self.n_parameter_samples = n_parameter_samples
        self.seed = seed

    # ------------------------------------------------------------------
    def _test_accuracy(self, spec: ModelClassSpec, theta: np.ndarray, test: Dataset) -> float:
        predictions = spec.predict(theta, test.X)
        if spec.task in {"binary", "multiclass"}:
            return float(np.mean(predictions == test.y))
        if spec.task == "regression":
            # R²-style score so "higher is better" holds for every task.
            residual = float(np.mean((predictions - test.y) ** 2))
            variance = float(np.var(test.y)) or 1.0
            return 1.0 - residual / variance
        raise ModelSpecError(f"cannot score task {spec.task!r} on a test set")

    # ------------------------------------------------------------------
    def run(
        self,
        candidates: list[HyperparameterCandidate],
        strategy: str = "blinkml",
        time_budget_seconds: float | None = None,
    ) -> SearchResult:
        """Evaluate candidates in order until the budget (or the list) runs out.

        Parameters
        ----------
        candidates:
            The shared candidate sequence (from :class:`SearchSpace`).
        strategy:
            ``"blinkml"`` (approximate models under the contract) or
            ``"full"`` (exact models).
        time_budget_seconds:
            Optional wall-clock budget; evaluation stops after the first
            candidate that exceeds it.
        """
        if strategy not in {"blinkml", "full"}:
            raise ModelSpecError("strategy must be 'blinkml' or 'full'")

        result = SearchResult(strategy=strategy)
        cumulative = 0.0
        for candidate in candidates:
            if time_budget_seconds is not None and cumulative >= time_budget_seconds:
                break
            spec = self.spec_factory(candidate.regularization)
            train_view = self.train.select_features(np.array(candidate.feature_indices))
            holdout_view = self.holdout.select_features(np.array(candidate.feature_indices))
            test_view = self.test.select_features(np.array(candidate.feature_indices))

            start = time.perf_counter()
            if strategy == "full":
                model = spec.fit(train_view)
                sample_size = train_view.n_rows
                theta = model.theta
            else:
                coordinator = BlinkML(
                    spec,
                    initial_sample_size=self.initial_sample_size,
                    n_parameter_samples=self.n_parameter_samples,
                    seed=self.seed,
                )
                outcome = coordinator.train(train_view, holdout_view, self.contract)
                sample_size = outcome.sample_size
                theta = outcome.model.theta
            elapsed = time.perf_counter() - start
            cumulative += elapsed

            accuracy = self._test_accuracy(spec, theta, test_view)
            result.trials.append(
                SearchTrial(
                    candidate=candidate,
                    test_accuracy=accuracy,
                    training_seconds=elapsed,
                    cumulative_seconds=cumulative,
                    sample_size=sample_size,
                    strategy=strategy,
                )
            )
        return result
