"""Hyperparameter-optimisation harness (Section 5.7).

The paper's Figure 10 experiment runs Random Search over pairs of a random
feature subset and a regularisation coefficient, training either full models
(traditional approach) or 95 %-accurate BlinkML models for each candidate.
This subpackage provides:

* :class:`repro.tuning.search_space.SearchSpace` — the candidate generator
  (feature subsets × log-uniform regularisation);
* :class:`repro.tuning.random_search.RandomSearch` — the driver that trains
  and scores each candidate with either strategy under a time budget.
"""

from repro.tuning.search_space import HyperparameterCandidate, SearchSpace
from repro.tuning.random_search import RandomSearch, SearchTrial, SearchResult

__all__ = [
    "HyperparameterCandidate",
    "SearchSpace",
    "RandomSearch",
    "SearchTrial",
    "SearchResult",
]
