"""Hyperparameter search space: random feature subsets × regularisation.

Mirrors the Section 5.7 setup: "we first generated a sequence of (pairs of)
a randomly chosen feature set and a regularization coefficient".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ModelSpecError


@dataclass(frozen=True)
class HyperparameterCandidate:
    """One point of the search space.

    Attributes
    ----------
    feature_indices:
        The feature columns this candidate trains on.
    regularization:
        The L2 coefficient β for this candidate.
    index:
        Position of the candidate in the generated sequence (both search
        strategies consume the same sequence, as in the paper, so results
        are comparable per index).
    """

    feature_indices: tuple[int, ...]
    regularization: float
    index: int


class SearchSpace:
    """Generates a reproducible sequence of hyperparameter candidates.

    Parameters
    ----------
    n_features:
        Total number of available features.
    min_features / max_features:
        Bounds on the size of the sampled feature subsets.
    log_reg_range:
        Regularisation coefficients are drawn log-uniformly from
        ``10**log_reg_range[0]`` to ``10**log_reg_range[1]``.
    seed:
        Seed for the candidate sequence.
    """

    def __init__(
        self,
        n_features: int,
        min_features: int | None = None,
        max_features: int | None = None,
        log_reg_range: tuple[float, float] = (-4.0, 0.0),
        seed: int | None = 0,
    ):
        if n_features < 1:
            raise ModelSpecError("search space needs at least one feature")
        self.n_features = int(n_features)
        self.min_features = int(min_features) if min_features else max(1, n_features // 4)
        self.max_features = int(max_features) if max_features else n_features
        if not 1 <= self.min_features <= self.max_features <= self.n_features:
            raise ModelSpecError(
                "feature-subset bounds must satisfy 1 <= min <= max <= n_features"
            )
        if log_reg_range[0] > log_reg_range[1]:
            raise ModelSpecError("log_reg_range must be (low, high) with low <= high")
        self.log_reg_range = (float(log_reg_range[0]), float(log_reg_range[1]))
        self._rng = np.random.default_rng(seed)

    def sample(self, n_candidates: int) -> list[HyperparameterCandidate]:
        """Draw ``n_candidates`` candidates (a fresh, reproducible sequence)."""
        if n_candidates < 1:
            raise ModelSpecError("must request at least one candidate")
        candidates = []
        for index in range(n_candidates):
            subset_size = int(self._rng.integers(self.min_features, self.max_features + 1))
            features = tuple(
                int(i)
                for i in np.sort(
                    self._rng.choice(self.n_features, size=subset_size, replace=False)
                )
            )
            log_reg = self._rng.uniform(*self.log_reg_range)
            candidates.append(
                HyperparameterCandidate(
                    feature_indices=features,
                    regularization=float(10.0**log_reg),
                    index=index,
                )
            )
        return candidates
