"""BlinkML reproduction: approximate MLE training with probabilistic guarantees.

This package reimplements the BlinkML system (Park, Qing, Shen, Mozafari —
SIGMOD 2019) from scratch on NumPy/SciPy.  The top-level namespace
re-exports the pieces a typical user needs:

>>> from repro import BlinkML, ApproximationContract, LogisticRegressionSpec
>>> from repro.data import criteo_like, train_holdout_test_split
>>> splits = train_holdout_test_split(criteo_like(n_rows=20_000, n_features=50))
>>> trainer = BlinkML(LogisticRegressionSpec(regularization=1e-3), seed=0)
>>> result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
>>> result.estimated_accuracy >= 0.95
True

See README.md for the system inventory, docs/api.md for the full public
surface, docs/serving.md for the serving guide, and docs/architecture.md
for the layer boundaries; benchmarks/bench_fig*.py reproduce the paper's
figures.
"""

from repro.core.caching import CacheStats, LRUCache
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.core.registry import RegistryStats, SessionInfo, SessionRegistry
from repro.core.session import (
    CoalescedTrainOutcome,
    EstimationSession,
    SessionAnswer,
    SessionRefresh,
)
from repro.core.result import ApproximateTrainingResult, TimingBreakdown
from repro.core.accuracy import AccuracyEstimate, ModelAccuracyEstimator
from repro.core.sample_size import (
    FusedSizeSearch,
    SampleSizeEstimate,
    SampleSizeEstimator,
)
from repro.serving import BatcherStats, CoalescingService, ContractBatcher
from repro.core.statistics import (
    GradientMomentAccumulator,
    ModelStatistics,
    StatisticsMethod,
    compute_statistics,
)
from repro.core.parameter_sampler import ParameterSampler
from repro.linalg.moments import GradientMomentSummary
from repro.models import (
    LinearRegressionSpec,
    LogisticRegressionSpec,
    MaxEntropySpec,
    PoissonRegressionSpec,
    PPCASpec,
    ModelClassSpec,
    TrainedModel,
    get_model_spec,
    available_models,
)
from repro.data import (
    Dataset,
    ShardStore,
    ShardedDataset,
    train_holdout_test_split,
)
from repro.data.store import WarmCacheStats, WarmCacheTier
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    Tracer,
    get_metrics,
    get_tracer,
    obs_enabled,
    render_prometheus,
    render_span_tree,
)
from repro.exceptions import (
    BlinkMLError,
    ContractError,
    DataError,
    ModelSpecError,
    ObservabilityError,
    OptimizationError,
    SampleSizeError,
    ServingError,
    ServingOverloadError,
    StatisticsError,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximationContract",
    "BlinkML",
    "CacheStats",
    "LRUCache",
    "EstimationSession",
    "SessionAnswer",
    "SessionRefresh",
    "SessionRegistry",
    "RegistryStats",
    "SessionInfo",
    "CoalescedTrainOutcome",
    "FusedSizeSearch",
    "ContractBatcher",
    "BatcherStats",
    "CoalescingService",
    "ApproximateTrainingResult",
    "TimingBreakdown",
    "AccuracyEstimate",
    "ModelAccuracyEstimator",
    "SampleSizeEstimate",
    "SampleSizeEstimator",
    "ModelStatistics",
    "StatisticsMethod",
    "compute_statistics",
    "GradientMomentAccumulator",
    "GradientMomentSummary",
    "ParameterSampler",
    "LinearRegressionSpec",
    "LogisticRegressionSpec",
    "MaxEntropySpec",
    "PoissonRegressionSpec",
    "PPCASpec",
    "ModelClassSpec",
    "TrainedModel",
    "get_model_spec",
    "available_models",
    "Dataset",
    "ShardStore",
    "ShardedDataset",
    "WarmCacheStats",
    "WarmCacheTier",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "obs_enabled",
    "render_prometheus",
    "render_span_tree",
    "train_holdout_test_split",
    "BlinkMLError",
    "ObservabilityError",
    "ContractError",
    "DataError",
    "ModelSpecError",
    "OptimizationError",
    "SampleSizeError",
    "ServingError",
    "ServingOverloadError",
    "StatisticsError",
    "__version__",
]
