"""Exception hierarchy for the BlinkML reproduction.

All library errors derive from :class:`BlinkMLError` so callers can catch a
single base class.  Each subclass corresponds to one failure mode of the
system described in the paper (invalid approximation contract, unsupported
model configuration, optimisation failure, or an infeasible sample-size
request).
"""

from __future__ import annotations


class BlinkMLError(Exception):
    """Base class for every error raised by this library."""


class ContractError(BlinkMLError):
    """Raised when an approximation contract (epsilon, delta) is invalid.

    Examples include ``epsilon`` outside ``(0, 1)`` or ``delta`` outside
    ``(0, 1)``.
    """


class ModelSpecError(BlinkMLError):
    """Raised when a model class specification is mis-configured.

    For instance a negative regularisation coefficient, a PPCA factor count
    larger than the feature dimension, or labels that do not match the task
    (non-binary labels passed to logistic regression).
    """


class OptimizationError(BlinkMLError):
    """Raised when an optimizer fails to make progress.

    The trainer treats non-finite losses or gradients as fatal; the error
    message records the iteration at which the failure occurred.
    """


class SampleSizeError(BlinkMLError):
    """Raised when no sample size in ``[n0, N]`` can satisfy the contract."""


class DataError(BlinkMLError):
    """Raised when a dataset is malformed (shape mismatch, empty split)."""


class StatisticsError(BlinkMLError):
    """Raised when the H/J statistics cannot be computed or factorised."""


class ServingError(BlinkMLError):
    """Raised by the coalescing serving tier (closed batcher, timed-out wait)."""


class ObservabilityError(BlinkMLError):
    """Raised by the observability tier (repro.obs) on misuse.

    Conflicting instrument redeclarations (same name, different kind or
    label set), label values for undeclared label names, negative counter
    increments, and snapshot merges across incompatible schemas (mismatched
    histogram buckets) all fail fast with this error — silently folding
    incompatible series would corrupt the accounting the tier exists to
    keep exact.
    """


class ServingOverloadError(ServingError):
    """Raised when admission control load-sheds a request.

    The serving front-end bounds its per-session queues; a submission that
    would exceed the bound — or that arrives while the registry's byte
    budget is hot and the stricter hot-admission bound is exceeded — fails
    fast with this error instead of queueing unboundedly.  Callers should
    treat it as retryable backpressure.
    """
