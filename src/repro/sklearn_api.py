"""Estimator-style wrappers around the BlinkML coordinator.

The paper's conclusion announces wrappers for popular ML libraries
(scikit-learn, glm, MLlib).  This module provides the scikit-learn-shaped
one: classes with ``fit(X, y)`` / ``predict(X)`` / ``score(X, y)`` whose
constructor takes the approximation contract, so existing pipelines can
switch to approximate training by swapping the estimator class.

The wrappers do not depend on scikit-learn itself (the library has no such
dependency); they simply follow its calling conventions.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.config import (
    DEFAULT_DELTA,
    DEFAULT_INITIAL_SAMPLE_SIZE,
    DEFAULT_NUM_PARAMETER_SAMPLES,
)
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.core.result import ApproximateTrainingResult
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.exceptions import BlinkMLError, ModelSpecError
from repro.models.registry import get_model_spec


class BlinkMLEstimator:
    """Base class for the scikit-learn-style wrappers.

    Parameters
    ----------
    model:
        Registry name of the model class (``lin``, ``lr``, ``me``,
        ``poisson``, ``ppca``).
    accuracy:
        Requested accuracy ``1 − ε`` of the approximation contract.
    delta:
        Violation probability of the contract.
    holdout_fraction:
        Fraction of the supplied training data reserved (internally) for the
        accuracy estimator's holdout set.
    initial_sample_size / n_parameter_samples / seed / statistics_method:
        Forwarded to :class:`repro.core.coordinator.BlinkML`.
    model_kwargs:
        Forwarded to the model spec constructor (e.g. ``regularization``).
    """

    def __init__(
        self,
        model: str,
        accuracy: float = 0.95,
        delta: float = DEFAULT_DELTA,
        holdout_fraction: float = 0.1,
        initial_sample_size: int = DEFAULT_INITIAL_SAMPLE_SIZE,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        seed: int | None = None,
        statistics_method: str = "observed_fisher",
        **model_kwargs: Any,
    ):
        self.model = model
        self.accuracy = accuracy
        self.delta = delta
        self.holdout_fraction = holdout_fraction
        self.initial_sample_size = initial_sample_size
        self.n_parameter_samples = n_parameter_samples
        self.seed = seed
        self.statistics_method = statistics_method
        self.model_kwargs = model_kwargs

        self.spec_ = None
        self.result_: ApproximateTrainingResult | None = None

    # ------------------------------------------------------------------
    def _make_dataset(self, X: np.ndarray, y: np.ndarray | None) -> Dataset:
        return Dataset(np.asarray(X, dtype=np.float64), y)

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "BlinkMLEstimator":
        """Train an approximate model satisfying the configured contract."""
        self.spec_ = get_model_spec(self.model, **self.model_kwargs)
        dataset = self._make_dataset(X, y)
        # Reserve a holdout slice for the accuracy estimator; no test split
        # is needed because scoring is the caller's business.
        splits = train_holdout_test_split(
            dataset,
            SplitSpec(holdout_fraction=self.holdout_fraction, test_fraction=0.01),
            rng=np.random.default_rng(self.seed),
        )
        trainer = BlinkML(
            self.spec_,
            initial_sample_size=self.initial_sample_size,
            n_parameter_samples=self.n_parameter_samples,
            statistics_method=self.statistics_method,
            seed=self.seed,
        )
        contract = ApproximationContract.from_accuracy(self.accuracy, delta=self.delta)
        self.result_ = trainer.train(splits.train, splits.holdout, contract)
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> ApproximateTrainingResult:
        if self.result_ is None:
            raise BlinkMLError("estimator is not fitted; call fit(X, y) first")
        return self.result_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions of the fitted approximate model."""
        result = self._check_fitted()
        return result.model.predict(np.asarray(X, dtype=np.float64))

    @property
    def estimated_accuracy_(self) -> float:
        """The fitted model's estimated agreement with the (untrained) full model."""
        return self._check_fitted().estimated_accuracy

    @property
    def sample_size_(self) -> int:
        """Number of training rows the fitted model consumed."""
        return self._check_fitted().sample_size

    def get_params(self, deep: bool = True) -> dict:
        """scikit-learn-compatible parameter introspection."""
        del deep
        params = {
            "model": self.model,
            "accuracy": self.accuracy,
            "delta": self.delta,
            "holdout_fraction": self.holdout_fraction,
            "initial_sample_size": self.initial_sample_size,
            "n_parameter_samples": self.n_parameter_samples,
            "seed": self.seed,
            "statistics_method": self.statistics_method,
        }
        params.update(self.model_kwargs)
        return params

    def set_params(self, **params: Any) -> "BlinkMLEstimator":
        """scikit-learn-compatible parameter update."""
        for key, value in params.items():
            if hasattr(self, key):
                setattr(self, key, value)
            else:
                self.model_kwargs[key] = value
        return self


class BlinkMLClassifier(BlinkMLEstimator):
    """Approximate classifier (logistic regression or max-entropy)."""

    def __init__(self, model: str = "lr", **kwargs: Any):
        super().__init__(model=model, **kwargs)

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "BlinkMLClassifier":
        if y is None:
            raise ModelSpecError("a classifier requires labels")
        super().fit(X, np.asarray(y))
        if self.spec_.task not in {"binary", "multiclass"}:
            raise ModelSpecError(f"model {self.model!r} is not a classifier")
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities when the underlying model exposes them."""
        result = self._check_fitted()
        spec = result.model.spec
        if not hasattr(spec, "predict_proba"):
            raise ModelSpecError(f"model {self.model!r} has no probability output")
        return spec.predict_proba(result.model.theta, np.asarray(X, dtype=np.float64))

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean classification accuracy."""
        return float(np.mean(self.predict(X) == np.asarray(y)))


class BlinkMLRegressor(BlinkMLEstimator):
    """Approximate regressor (linear or Poisson regression)."""

    def __init__(self, model: str = "lin", **kwargs: Any):
        super().__init__(model=model, **kwargs)

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "BlinkMLRegressor":
        if y is None:
            raise ModelSpecError("a regressor requires targets")
        super().fit(X, np.asarray(y, dtype=np.float64))
        if self.spec_.task != "regression":
            raise ModelSpecError(f"model {self.model!r} is not a regressor")
        return self

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² of the predictions."""
        y = np.asarray(y, dtype=np.float64)
        predictions = self.predict(X)
        residual = float(np.sum((y - predictions) ** 2))
        total = float(np.sum((y - y.mean()) ** 2))
        if total == 0:
            return 0.0
        return 1.0 - residual / total


class BlinkMLTransformer(BlinkMLEstimator):
    """Approximate unsupervised transformer (PPCA)."""

    def __init__(self, model: str = "ppca", **kwargs: Any):
        super().__init__(model=model, **kwargs)

    def fit(self, X: np.ndarray, y: np.ndarray | None = None) -> "BlinkMLTransformer":
        super().fit(X, None)
        if self.spec_.task != "unsupervised":
            raise ModelSpecError(f"model {self.model!r} is not an unsupervised model")
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Latent scores of each row under the fitted factor model."""
        return self.predict(X)

    def fit_transform(self, X: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        return self.fit(X, y).transform(X)
