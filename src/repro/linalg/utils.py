"""Small linear-algebra helpers shared by the statistics and sampling code."""

from __future__ import annotations

import numpy as np

from repro.exceptions import StatisticsError


def freeze(array: np.ndarray) -> np.ndarray:
    """Mark ``array`` read-only in place and return it.

    The single blessed way the codebase publishes an immutable ndarray —
    cached difference vectors, sampler base draws, dataset columns, the
    nested-sampling permutation.  Aliasing bugs where one caller's in-place
    edit corrupted another caller's cached view were fixed one at a time in
    PRs 2–3; routing every publication through this helper lets the
    invariant linter (REP002, see ``docs/invariants.md``) verify the
    discipline mechanically instead of by reviewer memory.

    Freezing is idempotent, and intentionally *in place* rather than on a
    copy: the point is that the caller's own reference is read-only too,
    so no writable alias of a published array survives.  Callers that need
    a writable version afterwards must ``.copy()``.
    """
    array.flags.writeable = False  # repro-lint: disable=REP002 (the one blessed writeable-flag site; every other module must call freeze())
    return array


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + Aᵀ) / 2`` of a square matrix.

    Numerical Hessians and covariances accumulate tiny asymmetries; the
    samplers require exactly symmetric inputs.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise StatisticsError(f"expected a square matrix, got shape {matrix.shape}")
    return 0.5 * (matrix + matrix.T)


def safe_cholesky(matrix: np.ndarray, jitter: float = 1e-10, max_tries: int = 8) -> np.ndarray:
    """Cholesky factorisation with escalating diagonal jitter.

    Covariance matrices assembled from finite samples can be indefinite by a
    hair; adding a growing multiple of the identity until the factorisation
    succeeds is the standard remedy.  Raises :class:`StatisticsError` when
    even a large jitter does not help (which indicates a genuinely broken
    covariance, not numerical noise).
    """
    matrix = symmetrize(matrix)
    scale = float(np.mean(np.abs(np.diag(matrix)))) or 1.0
    current_jitter = 0.0
    for attempt in range(max_tries):
        try:
            return np.linalg.cholesky(matrix + current_jitter * np.eye(matrix.shape[0]))
        except np.linalg.LinAlgError:
            current_jitter = jitter * scale * (10.0 ** attempt)
    raise StatisticsError(
        "covariance matrix is not positive definite even after adding jitter "
        f"(final jitter {current_jitter:g})"
    )


def sample_multivariate_normal(
    mean: np.ndarray,
    covariance: np.ndarray,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` samples from ``N(mean, covariance)`` via Cholesky.

    This is the *basic approach* the paper contrasts against (Section 4.3):
    it forms the dense covariance and factorises it.  BlinkML's fast path
    lives in :class:`repro.core.parameter_sampler.ParameterSampler`; this
    function is retained for the ClosedForm / InverseGradients statistics
    paths and for tests that validate the fast path against it.
    """
    mean = np.asarray(mean, dtype=np.float64)
    factor = safe_cholesky(covariance)
    z = rng.standard_normal(size=(size, mean.shape[0]))
    return mean[None, :] + z @ factor.T


def frobenius_distance(a: np.ndarray, b: np.ndarray, normalize: bool = True) -> float:
    """Average (per-entry) Frobenius distance between two matrices.

    Matches the accuracy metric used in Section 5.6:
    ``(1/d²) ‖C_t − C_e‖_F`` when ``normalize`` is true.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise StatisticsError(f"shape mismatch: {a.shape} vs {b.shape}")
    distance = float(np.linalg.norm(a - b, ord="fro"))
    if normalize:
        distance /= a.shape[0] * a.shape[1]
    return distance
