"""Linear-algebra substrate.

BlinkML's scalability to high-dimensional data hinges on never materialising
the d-by-d covariance matrix ``H^{-1} J H^{-1}`` (Sections 3.4 and 4.3).
This subpackage holds the factored representation that makes this possible:

* :class:`repro.linalg.covariance.FactoredCovariance` — the SVD-based
  ``U, Σ`` factorisation of the per-example gradient matrix, the derived
  transform ``L = U Λ`` with ``L Lᵀ = H⁻¹ J H⁻¹``, and dense reconstruction
  helpers used for testing and for the ClosedForm / InverseGradients paths;
* :mod:`repro.linalg.moments` — shard-mergeable moment summaries
  (tall-skinny-QR gradient factors, probe gradient sums, block Hessian
  sums) that the streaming statistics tier folds block by block and the
  shard store persists as per-shard sidecars;
* :mod:`repro.linalg.utils` — small shared helpers (safe Cholesky,
  symmetrisation, dense multivariate-normal sampling).
"""

from repro.linalg.covariance import FactoredCovariance
from repro.linalg.moments import (
    BlockHessianSummary,
    GradientMomentSummary,
    MomentSummary,
    ProbeMomentSummary,
    SUMMARY_KINDS,
    summary_kind,
)
from repro.linalg.utils import (
    freeze,
    symmetrize,
    safe_cholesky,
    sample_multivariate_normal,
    frobenius_distance,
)

__all__ = [
    "freeze",
    "FactoredCovariance",
    "GradientMomentSummary",
    "ProbeMomentSummary",
    "BlockHessianSummary",
    "MomentSummary",
    "SUMMARY_KINDS",
    "summary_kind",
    "symmetrize",
    "safe_cholesky",
    "sample_multivariate_normal",
    "frobenius_distance",
]
