"""Factored representation of the parameter covariance ``H⁻¹ J H⁻¹``.

Theorem 1 of the paper states that the difference between the approximate
and full model parameters follows ``N(0, α H⁻¹ J H⁻¹)``.  Explicitly forming
that d-by-d matrix costs Ω(d²) space — prohibitive when d reaches the
million-feature regime of the Criteo experiment — so BlinkML stores a thin
factor ``L`` with ``L Lᵀ = H⁻¹ J H⁻¹`` instead (Sections 3.4 and 4.3):

* the ObservedFisher path performs an SVD of the scaled per-example gradient
  matrix, giving ``J = U Σ² Uᵀ`` without ever forming ``J``; with L2
  regularisation ``r(θ) = βθ`` the factor is ``L = U Λ`` where
  ``Λ_ii = s_i / (s_i² + β)``;
* the ClosedForm / InverseGradients paths hold dense ``H`` and ``J`` (they
  are only used for low-dimensional data) and derive ``L`` by an
  eigendecomposition of the dense covariance.

:class:`FactoredCovariance` encapsulates both constructions and offers the
linear transform used by the fast parameter sampler, plus dense
reconstruction helpers used in tests and diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import StatisticsError
from repro.linalg.utils import symmetrize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.linalg.moments import GradientMomentSummary


@dataclass(frozen=True)
class FactoredCovariance:
    """A thin factor ``L`` of the unscaled parameter covariance.

    Attributes
    ----------
    transform:
        Array of shape ``(d, r)`` with ``transform @ transform.T`` equal to
        ``H⁻¹ J H⁻¹`` (the *unscaled* covariance; the ``α = 1/n − 1/N``
        factor is applied by the sampler via sampling-by-scaling).
    singular_values:
        The singular values ``s_i`` of the scaled gradient matrix when the
        factor was built by ObservedFisher, or the eigenvalue-derived
        pseudo-singular-values for dense constructions.  Useful for
        diagnostics (Figure 9a reproduces variance ratios from these).
    regularization:
        The L2 coefficient β that entered ``H = J + βI``.
    """

    transform: np.ndarray
    singular_values: np.ndarray
    regularization: float

    def __post_init__(self) -> None:
        transform = np.asarray(self.transform, dtype=np.float64)
        if transform.ndim != 2:
            raise StatisticsError(
                f"transform must be a 2-D array, got shape {transform.shape}"
            )
        object.__setattr__(self, "transform", transform)
        object.__setattr__(
            self, "singular_values", np.asarray(self.singular_values, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_per_example_gradients(
        cls,
        per_example_gradients: np.ndarray,
        regularization: float = 0.0,
        rank_tolerance: float = 1e-12,
    ) -> FactoredCovariance:
        """Build the factor from the per-example gradient matrix (ObservedFisher).

        Parameters
        ----------
        per_example_gradients:
            ``(n, d)`` matrix whose i-th row is ``q(θ_n; x_i, y_i)`` — the
            *unregularised* per-example gradient returned by the MCS
            ``grads`` function with the regulariser stripped.
        regularization:
            The L2 coefficient β.  ``H = J + βI`` per the information-matrix
            equality discussion in Section 3.4.
        rank_tolerance:
            Relative threshold below which singular values are treated as
            zero (directions with no gradient variance contribute nothing to
            the covariance).
        """
        Q = np.asarray(per_example_gradients, dtype=np.float64)
        if Q.ndim != 2:
            raise StatisticsError(
                f"per-example gradients must form a 2-D matrix, got shape {Q.shape}"
            )
        n = Q.shape[0]
        if n < 2:
            raise StatisticsError("need at least two per-example gradients")
        if regularization < 0:
            raise StatisticsError("regularization must be non-negative")

        # J is the covariance of individual gradients: J = (1/n) Σ q_i q_iᵀ.
        # SVD of the scaled matrix A = Q / sqrt(n) gives J = U diag(s²) Uᵀ.
        scaled = Q / np.sqrt(n)
        return cls._from_scaled_matrix(scaled, regularization, rank_tolerance)

    @classmethod
    def from_gradient_summary(
        cls,
        summary: "GradientMomentSummary",
        regularization: float = 0.0,
        rank_tolerance: float = 1e-12,
    ) -> FactoredCovariance:
        """Build the factor from a shard-merged gradient moment summary.

        The summary's triangular factor satisfies ``RᵀR = Σ qᵢqᵢᵀ``, so
        ``R / √n`` has exactly the singular values and right singular
        vectors of the scaled per-example gradient matrix ``Q / √n`` — the
        streaming statistics tier reaches the same covariance as
        :meth:`from_per_example_gradients` without ever materialising ``Q``.
        """
        if summary.rows < 2:
            raise StatisticsError("need at least two per-example gradients")
        if regularization < 0:
            raise StatisticsError("regularization must be non-negative")
        scaled = summary.r_factor / np.sqrt(summary.rows)
        return cls._from_scaled_matrix(scaled, regularization, rank_tolerance)

    @classmethod
    def _from_scaled_matrix(
        cls,
        scaled: np.ndarray,
        regularization: float,
        rank_tolerance: float,
    ) -> FactoredCovariance:
        """Shared SVD tail for the ObservedFisher constructors."""
        # full_matrices=False keeps U at (d, min(n, d)): the O(min(n²d, nd²))
        # cost quoted in Section 3.4.
        try:
            _, s, vt = np.linalg.svd(scaled, full_matrices=False)
        except np.linalg.LinAlgError:
            # NumPy's default divide-and-conquer driver (gesdd) occasionally
            # fails to converge on perfectly finite inputs; the slower but
            # more robust gesvd driver handles those cases.
            from scipy.linalg import svd as scipy_svd

            _, s, vt = scipy_svd(
                scaled, full_matrices=False, lapack_driver="gesvd"
            )
        U = vt.T
        if s.size == 0 or s[0] <= 0:
            raise StatisticsError("gradient matrix has no variance; cannot factorise J")
        keep = s > rank_tolerance * s[0]
        U = U[:, keep]
        s = s[keep]

        lam = cls._lambda_from_singular_values(s, regularization)
        return cls(transform=U * lam, singular_values=s, regularization=regularization)

    @classmethod
    def from_dense(
        cls,
        hessian: np.ndarray,
        gradient_covariance: np.ndarray,
        regularization: float = 0.0,
        eig_tolerance: float = 1e-12,
    ) -> FactoredCovariance:
        """Build the factor from dense ``H`` and ``J`` (ClosedForm / InverseGradients).

        The dense path is only used for low-dimensional models, so an
        explicit ``H⁻¹ J H⁻¹`` followed by an eigendecomposition is
        affordable.
        """
        H = symmetrize(hessian)
        J = symmetrize(gradient_covariance)
        if H.shape != J.shape:
            raise StatisticsError(f"H and J shapes differ: {H.shape} vs {J.shape}")
        try:
            H_inv = np.linalg.inv(H)
        except np.linalg.LinAlgError as exc:
            raise StatisticsError("Hessian H is singular; cannot invert") from exc
        covariance = symmetrize(H_inv @ J @ H_inv)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        # Clip tiny negative eigenvalues caused by round-off.
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        keep = eigenvalues > eig_tolerance * max(eigenvalues.max(), 1e-300)
        if not np.any(keep):
            raise StatisticsError("covariance H⁻¹JH⁻¹ is numerically zero")
        eigenvalues = eigenvalues[keep]
        eigenvectors = eigenvectors[:, keep]
        transform = eigenvectors * np.sqrt(eigenvalues)
        # Report pseudo singular values so diagnostics remain comparable.
        pseudo_s = np.sqrt(eigenvalues)
        return cls(
            transform=transform,
            singular_values=pseudo_s[::-1],
            regularization=regularization,
        )

    @staticmethod
    def _lambda_from_singular_values(s: np.ndarray, beta: float) -> np.ndarray:
        """Return ``Λ_ii = s_i / (s_i² + β)``, the Section 4.3 diagonal."""
        if beta == 0.0:
            # Without regularisation H = J, so H⁻¹JH⁻¹ = J⁻¹ restricted to
            # the span of U: eigenvalues 1 / s_i².
            return 1.0 / s
        return s / (s**2 + beta)

    # ------------------------------------------------------------------
    # Properties and transforms
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """The parameter dimension d."""
        return int(self.transform.shape[0])

    @property
    def rank(self) -> int:
        """Rank of the factor (number of retained directions)."""
        return int(self.transform.shape[1])

    def apply(self, z: np.ndarray) -> np.ndarray:
        """Map standard-normal draws ``z`` of shape ``(..., rank)`` to ``L z``.

        If ``z ~ N(0, I_rank)`` then ``apply(z) ~ N(0, H⁻¹ J H⁻¹)``.
        """
        z = np.asarray(z, dtype=np.float64)
        if z.shape[-1] != self.rank:
            raise StatisticsError(
                f"expected last dimension {self.rank}, got {z.shape[-1]}"
            )
        return z @ self.transform.T

    def dense(self) -> np.ndarray:
        """Materialise ``H⁻¹ J H⁻¹`` (tests / low-dimensional diagnostics only)."""
        return self.transform @ self.transform.T

    def marginal_variances(self) -> np.ndarray:
        """Per-parameter variances ``diag(H⁻¹ J H⁻¹)`` without densifying."""
        return np.einsum("ij,ij->i", self.transform, self.transform)

    def scaled(self, alpha: float) -> np.ndarray:
        """Return the dense covariance scaled by ``α`` (convenience for tests)."""
        if alpha < 0:
            raise StatisticsError("alpha must be non-negative")
        return alpha * self.dense()
