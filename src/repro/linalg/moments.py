"""Shard-mergeable moment summaries for the streaming statistics tier.

The Section 3.4 statistics are built from per-example gradients ``q_i`` —
quantities that decompose over row blocks.  This module holds the pure
linear-algebra side of that decomposition: compact, picklable summaries
that any worker can compute from one block (or one shard) and any reader
can combine associatively, in the same spirit as the Chan-combined
:class:`repro.data.store.LabelMoments`.

Three summary kinds, one per statistics method:

* :class:`GradientMomentSummary` (ObservedFisher) — the gradient sum plus a
  thin triangular factor ``R`` with ``RᵀR = Σ qᵢqᵢᵀ``, maintained by
  tall-skinny QR.  Merging two summaries stacks their R factors and
  re-triangularises, so the combined factor is always at most ``d × d`` —
  the per-example gradient matrix is never materialised, and an SVD of
  ``R/√n`` yields exactly the singular values / right singular vectors an
  SVD of ``Q/√n`` would (QR is backward stable; no Gram matrix is ever
  formed, so no squaring of the condition number).
* :class:`ProbeMomentSummary` (InverseGradients) — per-probe gradient sums
  for the ``d + 1`` finite-difference probes; merging adds.
* :class:`BlockHessianSummary` (ClosedForm) — the row-count-weighted sum of
  per-block data Hessians (regulariser stripped); merging adds.

Every summary round-trips losslessly through :meth:`to_arrays` /
:meth:`from_arrays` — the serialisation the per-shard statistics sidecars
(:mod:`repro.data.store.statistics_index`) persist — so a summary read back
from disk merges bitwise-identically to one computed in process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import StatisticsError


def _triangular_factor(stacked: np.ndarray) -> np.ndarray:
    """The ``R`` of a reduced QR of ``stacked`` (``RᵀR = stackedᵀ stacked``)."""
    return np.linalg.qr(np.ascontiguousarray(stacked, dtype=np.float64), mode="r")


@dataclass(frozen=True)
class GradientMomentSummary:
    """TSQR summary of a set of per-example gradients.

    Attributes
    ----------
    rows:
        Number of per-example gradients folded in.
    gradient_sum:
        ``Σ qᵢ`` of shape ``(d,)`` — recovers the mean gradient of any
        union of summaries exactly as ``gradient_sum / rows``.
    r_factor:
        ``(r, d)`` with ``r = min(rows, d)`` and ``r_factorᵀ r_factor =
        Σ qᵢqᵢᵀ`` — the raw (uncentred) second moment ``n·J`` in factored
        form, which is all ObservedFisher needs.
    """

    rows: int
    gradient_sum: np.ndarray
    r_factor: np.ndarray

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise StatisticsError("a gradient moment summary needs at least one row")
        gradient_sum = np.asarray(self.gradient_sum, dtype=np.float64)
        r_factor = np.asarray(self.r_factor, dtype=np.float64)
        if gradient_sum.ndim != 1 or r_factor.ndim != 2:
            raise StatisticsError(
                f"malformed gradient moment summary: gradient_sum "
                f"{gradient_sum.shape}, r_factor {r_factor.shape}"
            )
        if r_factor.shape[1] != gradient_sum.shape[0]:
            raise StatisticsError(
                f"summary dimension mismatch: r_factor has {r_factor.shape[1]} "
                f"columns, gradient_sum {gradient_sum.shape[0]} entries"
            )
        object.__setattr__(self, "gradient_sum", gradient_sum)
        object.__setattr__(self, "r_factor", r_factor)

    @property
    def dimension(self) -> int:
        return int(self.gradient_sum.shape[0])

    @classmethod
    def from_gradients(cls, gradients: np.ndarray) -> "GradientMomentSummary":
        """Summarise one ``(n, d)`` block of per-example gradients."""
        Q = np.asarray(gradients, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] == 0:
            raise StatisticsError(
                f"per-example gradients must form a non-empty 2-D matrix, "
                f"got shape {Q.shape}"
            )
        return cls(
            rows=int(Q.shape[0]),
            gradient_sum=Q.sum(axis=0),
            r_factor=_triangular_factor(Q),
        )

    def updated(self, gradients: np.ndarray) -> "GradientMomentSummary":
        """Fold one more gradient block in (one QR of ``(r + b, d)`` rows).

        This is THE canonical within-shard fold: the statistics tier builds
        every per-shard summary as a left fold of ``updated`` over the
        shard's blocks in row order, so a summary recomputed from the same
        shard under the same block size is bitwise identical to the
        persisted one.
        """
        Q = np.asarray(gradients, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] == 0:
            raise StatisticsError(
                f"per-example gradients must form a non-empty 2-D matrix, "
                f"got shape {Q.shape}"
            )
        if Q.shape[1] != self.dimension:
            raise StatisticsError(
                f"gradient block has {Q.shape[1]} columns, summary has "
                f"{self.dimension}"
            )
        return GradientMomentSummary(
            rows=self.rows + int(Q.shape[0]),
            gradient_sum=self.gradient_sum + Q.sum(axis=0),
            r_factor=_triangular_factor(np.vstack([self.r_factor, Q])),
        )

    def merge(self, other: "GradientMomentSummary") -> "GradientMomentSummary":
        """Combine two disjoint summaries (stack the R factors, re-QR).

        Associative up to floating-point round-off; the statistics tier
        always merges per-shard summaries as a left fold in shard order so
        the result is reproducible bit for bit.
        """
        if other.dimension != self.dimension:
            raise StatisticsError(
                f"cannot merge summaries of dimension {self.dimension} and "
                f"{other.dimension}"
            )
        return GradientMomentSummary(
            rows=self.rows + other.rows,
            gradient_sum=self.gradient_sum + other.gradient_sum,
            r_factor=_triangular_factor(np.vstack([self.r_factor, other.r_factor])),
        )

    def second_moment(self) -> np.ndarray:
        """``Σ qᵢqᵢᵀ = RᵀR`` densified (tests / low-dimensional diagnostics)."""
        return self.r_factor.T @ self.r_factor

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {
            "rows": np.array(self.rows, dtype=np.int64),
            "gradient_sum": self.gradient_sum,
            "r_factor": self.r_factor,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "GradientMomentSummary":
        return cls(
            rows=int(arrays["rows"]),
            gradient_sum=np.asarray(arrays["gradient_sum"]),
            r_factor=np.asarray(arrays["r_factor"]),
        )


@dataclass(frozen=True)
class ProbeMomentSummary:
    """Per-probe gradient sums for the InverseGradients finite differences.

    ``gradient_sums`` has shape ``(d + 1, d)``: row 0 sums the per-example
    gradients at θ itself, row ``j + 1`` at ``θ + ε e_j``.  Everything the
    finite-difference Hessian reconstruction needs, mergeable by addition.
    """

    rows: int
    gradient_sums: np.ndarray

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise StatisticsError("a probe moment summary needs at least one row")
        sums = np.asarray(self.gradient_sums, dtype=np.float64)
        if sums.ndim != 2 or sums.shape[0] != sums.shape[1] + 1:
            raise StatisticsError(
                f"probe gradient sums must have shape (d + 1, d), got {sums.shape}"
            )
        object.__setattr__(self, "gradient_sums", sums)

    @property
    def dimension(self) -> int:
        return int(self.gradient_sums.shape[1])

    def merge(self, other: "ProbeMomentSummary") -> "ProbeMomentSummary":
        if other.dimension != self.dimension:
            raise StatisticsError(
                f"cannot merge probe summaries of dimension {self.dimension} "
                f"and {other.dimension}"
            )
        return ProbeMomentSummary(
            rows=self.rows + other.rows,
            gradient_sums=self.gradient_sums + other.gradient_sums,
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {
            "rows": np.array(self.rows, dtype=np.int64),
            "gradient_sums": self.gradient_sums,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "ProbeMomentSummary":
        return cls(rows=int(arrays["rows"]), gradient_sums=np.asarray(arrays["gradient_sums"]))


@dataclass(frozen=True)
class BlockHessianSummary:
    """Row-weighted sum of per-block *data* Hessians (ClosedForm).

    Every built-in Hessian has the form ``H(θ, D) = (1/n) Σ hᵢ(θ) + βI``,
    so ``n_b · (H(θ, block) − βI)`` is the block's ``Σ hᵢ`` exactly and the
    full-dataset Hessian is recovered as ``hessian_sum / rows + βI``.
    """

    rows: int
    hessian_sum: np.ndarray

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise StatisticsError("a block Hessian summary needs at least one row")
        hessian_sum = np.asarray(self.hessian_sum, dtype=np.float64)
        if hessian_sum.ndim != 2 or hessian_sum.shape[0] != hessian_sum.shape[1]:
            raise StatisticsError(
                f"hessian sum must be a square matrix, got shape {hessian_sum.shape}"
            )
        object.__setattr__(self, "hessian_sum", hessian_sum)

    @property
    def dimension(self) -> int:
        return int(self.hessian_sum.shape[0])

    def merge(self, other: "BlockHessianSummary") -> "BlockHessianSummary":
        if other.dimension != self.dimension:
            raise StatisticsError(
                f"cannot merge Hessian summaries of dimension {self.dimension} "
                f"and {other.dimension}"
            )
        return BlockHessianSummary(
            rows=self.rows + other.rows,
            hessian_sum=self.hessian_sum + other.hessian_sum,
        )

    def to_arrays(self) -> dict[str, np.ndarray]:
        return {
            "rows": np.array(self.rows, dtype=np.int64),
            "hessian_sum": self.hessian_sum,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "BlockHessianSummary":
        return cls(rows=int(arrays["rows"]), hessian_sum=np.asarray(arrays["hessian_sum"]))


#: union of the three summary kinds, keyed by the tag the sidecars persist.
MomentSummary = GradientMomentSummary | ProbeMomentSummary | BlockHessianSummary

SUMMARY_KINDS: dict[str, type] = {
    "gradient": GradientMomentSummary,
    "probe": ProbeMomentSummary,
    "hessian": BlockHessianSummary,
}


def summary_kind(summary: MomentSummary) -> str:
    """The sidecar tag of a summary instance (inverse of :data:`SUMMARY_KINDS`)."""
    for kind, cls in SUMMARY_KINDS.items():
        if isinstance(summary, cls):
            return kind
    raise StatisticsError(f"unknown moment summary type {type(summary).__name__}")
