"""Damped Newton's method.

Requires the objective to expose an analytic Hessian (the linear and
logistic model classes do).  The step solves ``H p = -g``; a backtracking
search damps the step when the full Newton step overshoots, and a small
Levenberg-Marquardt style diagonal boost is applied when the Hessian solve
fails.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_GRADIENT_TOLERANCE
from repro.optim.base import Objective, check_finite
from repro.optim.line_search import backtracking_line_search
from repro.optim.result import OptimizationResult


class NewtonMethod:
    """Damped Newton with Hessian regularisation on solve failure."""

    def __init__(
        self,
        max_iterations: int = 100,
        gradient_tolerance: float = DEFAULT_GRADIENT_TOLERANCE,
        damping: float = 1e-8,
    ):
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance
        self.damping = damping

    def _newton_direction(self, hessian: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        d = hessian.shape[0]
        boost = 0.0
        for _ in range(6):
            try:
                direction = np.linalg.solve(hessian + boost * np.eye(d), -gradient)
                if np.all(np.isfinite(direction)) and float(direction @ gradient) < 0:
                    return direction
            except np.linalg.LinAlgError:
                pass
            boost = max(self.damping, boost * 10 if boost else self.damping)
        # Fall back to steepest descent if the Hessian is hopeless.
        return -gradient

    def minimize(self, objective: Objective, theta0: np.ndarray) -> OptimizationResult:
        theta = np.asarray(theta0, dtype=np.float64).copy()
        value, gradient = objective.value_and_gradient(theta)
        evaluations = 1
        history = [value]
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            check_finite("objective value", value, iteration)
            check_finite("gradient", gradient, iteration)
            gradient_norm = float(np.max(np.abs(gradient)))
            if gradient_norm <= self.gradient_tolerance:
                return OptimizationResult(
                    theta=theta,
                    converged=True,
                    n_iterations=iteration - 1,
                    final_value=value,
                    gradient_norm=gradient_norm,
                    n_function_evaluations=evaluations,
                    loss_history=history,
                )
            hessian = objective.hessian(theta)
            direction = self._newton_direction(hessian, gradient)
            search = backtracking_line_search(
                objective, theta, direction, value, gradient, initial_step=1.0
            )
            evaluations += search.n_evaluations
            if not search.success:
                break
            theta = theta + search.step_size * direction
            value, gradient = objective.value_and_gradient(theta)
            evaluations += 1
            history.append(value)

        gradient_norm = float(np.max(np.abs(gradient)))
        return OptimizationResult(
            theta=theta,
            converged=gradient_norm <= self.gradient_tolerance,
            n_iterations=iteration,
            final_value=value,
            gradient_norm=gradient_norm,
            n_function_evaluations=evaluations,
            loss_history=history,
        )
