"""Objective-function abstraction shared by all optimizers.

Every supported model reduces to minimising an average negative
log-likelihood plus an optional regulariser (Equation (2) of the paper).
Optimizers only need the objective value, the gradient and — for Newton —
the Hessian, so the interface below is deliberately minimal.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.exceptions import OptimizationError


class Objective:
    """Interface expected by the optimizers.

    Subclasses must implement :meth:`value` and :meth:`gradient`;
    :meth:`hessian` is optional (only Newton's method requires it) and
    :meth:`value_and_gradient` may be overridden when the two can share
    work (the model classes do so because both need the same forward pass).
    """

    def value(self, theta: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def value_and_gradient(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        return self.value(theta), self.gradient(theta)

    def hessian(self, theta: np.ndarray) -> np.ndarray:
        raise NotImplementedError(
            f"{type(self).__name__} does not provide an analytic Hessian"
        )


class FunctionObjective(Objective):
    """Adapter wrapping plain callables into an :class:`Objective`.

    Handy in tests and examples:

    >>> objective = FunctionObjective(lambda t: float(t @ t), lambda t: 2 * t)
    """

    def __init__(
        self,
        value_fn: Callable[[np.ndarray], float],
        gradient_fn: Callable[[np.ndarray], np.ndarray],
        hessian_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self._value_fn = value_fn
        self._gradient_fn = gradient_fn
        self._hessian_fn = hessian_fn

    def value(self, theta: np.ndarray) -> float:
        return float(self._value_fn(np.asarray(theta, dtype=np.float64)))

    def gradient(self, theta: np.ndarray) -> np.ndarray:
        return np.asarray(self._gradient_fn(np.asarray(theta, dtype=np.float64)), dtype=np.float64)

    def hessian(self, theta: np.ndarray) -> np.ndarray:
        if self._hessian_fn is None:
            raise OptimizationError("no Hessian function was provided")
        return np.asarray(self._hessian_fn(np.asarray(theta, dtype=np.float64)), dtype=np.float64)


def check_finite(name: str, array: np.ndarray | float, iteration: int) -> None:
    """Raise :class:`OptimizationError` if ``array`` contains NaN or inf."""
    if not np.all(np.isfinite(array)):
        raise OptimizationError(
            f"{name} became non-finite at iteration {iteration}; "
            "the objective is likely ill-conditioned or the step size too large"
        )
