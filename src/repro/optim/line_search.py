"""Line searches used by the descent methods.

Two strategies are provided:

* :func:`backtracking_line_search` — Armijo backtracking, cheap and robust,
  used by plain gradient descent and as a fallback;
* :func:`wolfe_line_search` — a bracketing strong-Wolfe search (Nocedal &
  Wright, Algorithm 3.5/3.6).  BFGS and L-BFGS require the curvature
  condition so that their quasi-Newton updates stay positive definite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.optim.base import Objective


@dataclass
class LineSearchResult:
    """Step size chosen by a line search along a fixed descent direction."""

    step_size: float
    value: float
    gradient: np.ndarray | None
    n_evaluations: int
    success: bool


def backtracking_line_search(
    objective: Objective,
    theta: np.ndarray,
    direction: np.ndarray,
    value: float,
    gradient: np.ndarray,
    initial_step: float = 1.0,
    shrink: float = 0.5,
    armijo_c: float = 1e-4,
    max_steps: int = 40,
) -> LineSearchResult:
    """Armijo backtracking: shrink the step until sufficient decrease holds."""
    directional_derivative = float(gradient @ direction)
    step = initial_step
    evaluations = 0
    for _ in range(max_steps):
        candidate = theta + step * direction
        candidate_value = objective.value(candidate)
        evaluations += 1
        if np.isfinite(candidate_value) and candidate_value <= value + armijo_c * step * directional_derivative:
            return LineSearchResult(step, candidate_value, None, evaluations, True)
        step *= shrink
    return LineSearchResult(step, value, None, evaluations, False)


def wolfe_line_search(
    objective: Objective,
    theta: np.ndarray,
    direction: np.ndarray,
    value: float,
    gradient: np.ndarray,
    initial_step: float = 1.0,
    c1: float = 1e-4,
    c2: float = 0.9,
    max_steps: int = 25,
    max_step_size: float = 1e8,
) -> LineSearchResult:
    """Strong-Wolfe line search (bracket + zoom).

    Returns the gradient at the accepted point so callers can reuse it for
    the next quasi-Newton update without an extra evaluation.
    """
    phi0 = value
    dphi0 = float(gradient @ direction)
    evaluations = 0

    def phi(alpha: float) -> tuple[float, np.ndarray]:
        nonlocal evaluations
        candidate_value, candidate_gradient = objective.value_and_gradient(theta + alpha * direction)
        evaluations += 1
        return candidate_value, candidate_gradient

    if dphi0 >= 0:
        # Not a descent direction; signal failure so the caller can reset.
        return LineSearchResult(0.0, value, gradient, evaluations, False)

    def zoom(alpha_lo: float, alpha_hi: float, value_lo: float) -> LineSearchResult:
        nonlocal evaluations
        best = LineSearchResult(alpha_lo, value_lo, None, evaluations, False)
        for _ in range(max_steps):
            alpha = 0.5 * (alpha_lo + alpha_hi)
            candidate_value, candidate_gradient = phi(alpha)
            dphi = float(candidate_gradient @ direction)
            if (not np.isfinite(candidate_value)) or candidate_value > phi0 + c1 * alpha * dphi0 or candidate_value >= value_lo:
                alpha_hi = alpha
            else:
                if abs(dphi) <= -c2 * dphi0:
                    return LineSearchResult(alpha, candidate_value, candidate_gradient, evaluations, True)
                if dphi * (alpha_hi - alpha_lo) >= 0:
                    alpha_hi = alpha_lo
                alpha_lo = alpha
                value_lo = candidate_value
                best = LineSearchResult(alpha, candidate_value, candidate_gradient, evaluations, True)
            if abs(alpha_hi - alpha_lo) < 1e-14:
                break
        return best

    previous_alpha = 0.0
    previous_value = phi0
    alpha = min(initial_step, max_step_size)
    for iteration in range(max_steps):
        candidate_value, candidate_gradient = phi(alpha)
        if (not np.isfinite(candidate_value)) or candidate_value > phi0 + c1 * alpha * dphi0 or (
            iteration > 0 and candidate_value >= previous_value
        ):
            return zoom(previous_alpha, alpha, previous_value)
        dphi = float(candidate_gradient @ direction)
        if abs(dphi) <= -c2 * dphi0:
            return LineSearchResult(alpha, candidate_value, candidate_gradient, evaluations, True)
        if dphi >= 0:
            return zoom(alpha, previous_alpha, candidate_value)
        previous_alpha = alpha
        previous_value = candidate_value
        alpha = min(2.0 * alpha, max_step_size)

    # Fall back to the last evaluated point; mark as unsuccessful so the
    # caller can decide whether to accept the step anyway.
    return LineSearchResult(previous_alpha, previous_value, None, evaluations, False)
