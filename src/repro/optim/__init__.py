"""Optimisation substrate: the "Model Trainer" component of BlinkML.

The paper trains its convex MLE objectives with BFGS for low-dimensional
data and L-BFGS for high-dimensional data (Section 5.1).  This subpackage
implements both, plus gradient descent and (damped) Newton for completeness
and for testing, all from scratch on NumPy:

* :mod:`repro.optim.line_search` — backtracking / strong-Wolfe line search;
* :mod:`repro.optim.gradient_descent` — steepest descent;
* :mod:`repro.optim.newton` — damped Newton's method (requires a Hessian);
* :mod:`repro.optim.bfgs` — dense BFGS with inverse-Hessian updates;
* :mod:`repro.optim.lbfgs` — limited-memory BFGS (two-loop recursion);
* :func:`repro.optim.minimize` — the dispatcher the coordinator calls, which
  applies the paper's d < 100 → BFGS, otherwise → L-BFGS rule when the
  method is left unspecified.
"""

from repro.optim.base import Objective, FunctionObjective
from repro.optim.result import OptimizationResult
from repro.optim.line_search import backtracking_line_search, wolfe_line_search
from repro.optim.gradient_descent import GradientDescent
from repro.optim.newton import NewtonMethod
from repro.optim.bfgs import BFGS
from repro.optim.lbfgs import LBFGS
from repro.optim.driver import minimize, optimizer_for_dimension

__all__ = [
    "Objective",
    "FunctionObjective",
    "OptimizationResult",
    "backtracking_line_search",
    "wolfe_line_search",
    "GradientDescent",
    "NewtonMethod",
    "BFGS",
    "LBFGS",
    "minimize",
    "optimizer_for_dimension",
]
