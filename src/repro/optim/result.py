"""Result record returned by every optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class OptimizationResult:
    """Outcome of a single optimisation run.

    Attributes
    ----------
    theta:
        The final parameter vector.
    converged:
        Whether the gradient-norm tolerance was reached before the iteration
        budget ran out.
    n_iterations:
        Number of iterations performed.  Section 5.5 of the paper compares
        iteration counts between full and approximate training; the
        benchmark harness reads this field.
    final_value:
        Objective value at ``theta``.
    gradient_norm:
        Infinity norm of the gradient at ``theta``.
    n_function_evaluations:
        Total objective/gradient evaluations including line-search probes.
    loss_history:
        Objective value at the start of every iteration (useful for
        convergence plots and for asserting monotone decrease in tests).
    """

    theta: np.ndarray
    converged: bool
    n_iterations: int
    final_value: float
    gradient_norm: float
    n_function_evaluations: int = 0
    loss_history: list[float] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable description."""
        status = "converged" if self.converged else "did NOT converge"
        return (
            f"{status} after {self.n_iterations} iterations "
            f"(f={self.final_value:.6g}, |g|inf={self.gradient_norm:.3g}, "
            f"{self.n_function_evaluations} evaluations)"
        )
