"""Plain gradient descent with Armijo backtracking.

Included as the simplest trainer and as a reference implementation against
which the quasi-Newton methods are tested; it is rarely the right choice for
the paper's workloads but is useful for debugging model gradients.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_GRADIENT_TOLERANCE, DEFAULT_MAX_ITERATIONS
from repro.optim.base import Objective, check_finite
from repro.optim.line_search import backtracking_line_search
from repro.optim.result import OptimizationResult


class GradientDescent:
    """Steepest descent with backtracking line search.

    Parameters
    ----------
    max_iterations:
        Iteration budget.
    gradient_tolerance:
        Convergence is declared when the infinity norm of the gradient drops
        below this value.
    initial_step:
        First step size tried by the backtracking search at every iteration.
    """

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        gradient_tolerance: float = DEFAULT_GRADIENT_TOLERANCE,
        initial_step: float = 1.0,
    ):
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance
        self.initial_step = initial_step

    def minimize(self, objective: Objective, theta0: np.ndarray) -> OptimizationResult:
        theta = np.asarray(theta0, dtype=np.float64).copy()
        value, gradient = objective.value_and_gradient(theta)
        evaluations = 1
        history = [value]
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            check_finite("objective value", value, iteration)
            check_finite("gradient", gradient, iteration)
            gradient_norm = float(np.max(np.abs(gradient)))
            if gradient_norm <= self.gradient_tolerance:
                return OptimizationResult(
                    theta=theta,
                    converged=True,
                    n_iterations=iteration - 1,
                    final_value=value,
                    gradient_norm=gradient_norm,
                    n_function_evaluations=evaluations,
                    loss_history=history,
                )
            direction = -gradient
            search = backtracking_line_search(
                objective, theta, direction, value, gradient, initial_step=self.initial_step
            )
            evaluations += search.n_evaluations
            if not search.success or search.step_size == 0.0:
                break
            theta = theta + search.step_size * direction
            value, gradient = objective.value_and_gradient(theta)
            evaluations += 1
            history.append(value)

        gradient_norm = float(np.max(np.abs(gradient)))
        return OptimizationResult(
            theta=theta,
            converged=gradient_norm <= self.gradient_tolerance,
            n_iterations=iteration,
            final_value=value,
            gradient_norm=gradient_norm,
            n_function_evaluations=evaluations,
            loss_history=history,
        )
