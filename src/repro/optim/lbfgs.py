"""Limited-memory BFGS (two-loop recursion).

The memory-efficient alternative the paper uses when d >= 100
(Section 5.1).  Only the last ``memory`` curvature pairs are stored, so the
cost per iteration is O(memory * d) and the footprint never becomes
quadratic in the number of features.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.config import (
    DEFAULT_GRADIENT_TOLERANCE,
    DEFAULT_LBFGS_MEMORY,
    DEFAULT_MAX_ITERATIONS,
)
from repro.optim.base import Objective, check_finite
from repro.optim.line_search import wolfe_line_search
from repro.optim.result import OptimizationResult


class LBFGS:
    """Limited-memory BFGS with strong-Wolfe line search."""

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        gradient_tolerance: float = DEFAULT_GRADIENT_TOLERANCE,
        memory: int = DEFAULT_LBFGS_MEMORY,
    ):
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance
        self.memory = memory

    @staticmethod
    def _two_loop_direction(
        gradient: np.ndarray,
        s_history: deque[np.ndarray],
        y_history: deque[np.ndarray],
        rho_history: deque[float],
    ) -> np.ndarray:
        """Compute ``-H_k g`` using the standard two-loop recursion."""
        q = gradient.copy()
        alphas: list[float] = []
        for s, y, rho in zip(reversed(s_history), reversed(y_history), reversed(rho_history)):
            alpha = rho * float(s @ q)
            alphas.append(alpha)
            q -= alpha * y
        if s_history:
            s_last, y_last = s_history[-1], y_history[-1]
            gamma = float(s_last @ y_last) / max(float(y_last @ y_last), 1e-300)
            q *= gamma
        for (s, y, rho), alpha in zip(
            zip(s_history, y_history, rho_history), reversed(alphas)
        ):
            beta = rho * float(y @ q)
            q += (alpha - beta) * s
        return -q

    def minimize(self, objective: Objective, theta0: np.ndarray) -> OptimizationResult:
        theta = np.asarray(theta0, dtype=np.float64).copy()
        value, gradient = objective.value_and_gradient(theta)
        evaluations = 1
        history = [value]
        s_history: deque[np.ndarray] = deque(maxlen=self.memory)
        y_history: deque[np.ndarray] = deque(maxlen=self.memory)
        rho_history: deque[float] = deque(maxlen=self.memory)
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            check_finite("objective value", value, iteration)
            check_finite("gradient", gradient, iteration)
            gradient_norm = float(np.max(np.abs(gradient)))
            if gradient_norm <= self.gradient_tolerance:
                return OptimizationResult(
                    theta=theta,
                    converged=True,
                    n_iterations=iteration - 1,
                    final_value=value,
                    gradient_norm=gradient_norm,
                    n_function_evaluations=evaluations,
                    loss_history=history,
                )

            direction = self._two_loop_direction(gradient, s_history, y_history, rho_history)
            if float(direction @ gradient) >= 0:
                s_history.clear()
                y_history.clear()
                rho_history.clear()
                direction = -gradient

            search = wolfe_line_search(objective, theta, direction, value, gradient)
            evaluations += search.n_evaluations
            if not search.success or search.step_size <= 0:
                break

            new_theta = theta + search.step_size * direction
            if search.gradient is not None:
                new_value, new_gradient = search.value, search.gradient
            else:
                new_value, new_gradient = objective.value_and_gradient(new_theta)
                evaluations += 1

            s = new_theta - theta
            y = new_gradient - gradient
            sy = float(s @ y)
            if sy > 1e-12 * float(np.linalg.norm(s) * np.linalg.norm(y) + 1e-300):
                s_history.append(s)
                y_history.append(y)
                rho_history.append(1.0 / sy)

            theta, value, gradient = new_theta, new_value, new_gradient
            history.append(value)

        gradient_norm = float(np.max(np.abs(gradient)))
        return OptimizationResult(
            theta=theta,
            converged=gradient_norm <= self.gradient_tolerance,
            n_iterations=iteration,
            final_value=value,
            gradient_norm=gradient_norm,
            n_function_evaluations=evaluations,
            loss_history=history,
        )
