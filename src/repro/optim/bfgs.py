"""Dense BFGS with strong-Wolfe line search.

This is the optimizer the paper uses for low-dimensional datasets
(Section 5.1, d < 100).  The inverse Hessian approximation is maintained
explicitly, so memory is O(d²); use :class:`repro.optim.lbfgs.LBFGS` for
high-dimensional problems.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_GRADIENT_TOLERANCE, DEFAULT_MAX_ITERATIONS
from repro.optim.base import Objective, check_finite
from repro.optim.line_search import wolfe_line_search
from repro.optim.result import OptimizationResult


class BFGS:
    """Quasi-Newton BFGS maintaining an explicit inverse-Hessian estimate."""

    def __init__(
        self,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        gradient_tolerance: float = DEFAULT_GRADIENT_TOLERANCE,
    ):
        self.max_iterations = max_iterations
        self.gradient_tolerance = gradient_tolerance

    def minimize(self, objective: Objective, theta0: np.ndarray) -> OptimizationResult:
        theta = np.asarray(theta0, dtype=np.float64).copy()
        d = theta.shape[0]
        inverse_hessian = np.eye(d)
        value, gradient = objective.value_and_gradient(theta)
        evaluations = 1
        history = [value]
        iteration = 0

        for iteration in range(1, self.max_iterations + 1):
            check_finite("objective value", value, iteration)
            check_finite("gradient", gradient, iteration)
            gradient_norm = float(np.max(np.abs(gradient)))
            if gradient_norm <= self.gradient_tolerance:
                return OptimizationResult(
                    theta=theta,
                    converged=True,
                    n_iterations=iteration - 1,
                    final_value=value,
                    gradient_norm=gradient_norm,
                    n_function_evaluations=evaluations,
                    loss_history=history,
                )

            direction = -(inverse_hessian @ gradient)
            if float(direction @ gradient) >= 0:
                # Reset to steepest descent if the approximation degenerated.
                inverse_hessian = np.eye(d)
                direction = -gradient

            search = wolfe_line_search(objective, theta, direction, value, gradient)
            evaluations += search.n_evaluations
            if not search.success or search.step_size <= 0:
                break

            step = search.step_size * direction
            new_theta = theta + step
            if search.gradient is not None:
                new_value, new_gradient = search.value, search.gradient
            else:
                new_value, new_gradient = objective.value_and_gradient(new_theta)
                evaluations += 1

            s = new_theta - theta
            y = new_gradient - gradient
            sy = float(s @ y)
            if sy > 1e-12 * float(np.linalg.norm(s) * np.linalg.norm(y) + 1e-300):
                rho = 1.0 / sy
                identity = np.eye(d)
                left = identity - rho * np.outer(s, y)
                right = identity - rho * np.outer(y, s)
                inverse_hessian = left @ inverse_hessian @ right + rho * np.outer(s, s)

            theta, value, gradient = new_theta, new_value, new_gradient
            history.append(value)

        gradient_norm = float(np.max(np.abs(gradient)))
        return OptimizationResult(
            theta=theta,
            converged=gradient_norm <= self.gradient_tolerance,
            n_iterations=iteration,
            final_value=value,
            gradient_norm=gradient_norm,
            n_function_evaluations=evaluations,
            loss_history=history,
        )
