"""Dispatcher that picks an optimizer the way the paper's trainer does.

Section 5.1: "BlinkML is configured to use the BFGS optimization algorithm
for low-dimensional datasets (d < 100) and to use a memory-efficient
alternative, called L-BFGS, for high-dimensional datasets (d >= 100)."
:func:`optimizer_for_dimension` encodes exactly that rule, and
:func:`minimize` is the single entry point the Model Trainer (and the rest
of the library) goes through.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.config import BFGS_DIMENSION_THRESHOLD
from repro.exceptions import OptimizationError
from repro.optim.base import Objective
from repro.optim.bfgs import BFGS
from repro.optim.gradient_descent import GradientDescent
from repro.optim.lbfgs import LBFGS
from repro.optim.newton import NewtonMethod
from repro.optim.result import OptimizationResult

_METHODS = {
    "gd": GradientDescent,
    "newton": NewtonMethod,
    "bfgs": BFGS,
    "lbfgs": LBFGS,
}


def optimizer_for_dimension(dimension: int, **kwargs: Any) -> BFGS | LBFGS:
    """Return a BFGS instance for small d and an L-BFGS instance otherwise."""
    if dimension < BFGS_DIMENSION_THRESHOLD:
        return BFGS(**kwargs)
    return LBFGS(**kwargs)


def minimize(
    objective: Objective,
    theta0: np.ndarray,
    method: str | None = None,
    **kwargs: Any,
) -> OptimizationResult:
    """Minimise ``objective`` starting from ``theta0``.

    Parameters
    ----------
    objective:
        Any :class:`repro.optim.base.Objective`.
    theta0:
        Initial parameter vector.
    method:
        One of ``"gd"``, ``"newton"``, ``"bfgs"``, ``"lbfgs"`` or ``None``
        to apply the paper's dimension-based rule.
    kwargs:
        Forwarded to the optimizer constructor (``max_iterations``,
        ``gradient_tolerance``, ...).
    """
    theta0 = np.asarray(theta0, dtype=np.float64)
    if method is None:
        optimizer = optimizer_for_dimension(theta0.shape[0], **kwargs)
    else:
        key = method.lower().replace("-", "")
        if key not in _METHODS:
            raise OptimizationError(
                f"unknown optimisation method {method!r}; choose from {sorted(_METHODS)}"
            )
        optimizer = _METHODS[key](**kwargs)
    return optimizer.minimize(objective, theta0)
