"""Request-coalescing serving tier.

:class:`~repro.serving.batcher.ContractBatcher` fuses a window of
concurrent (ε, δ) contracts against one session into single streamed
evaluations; :class:`~repro.serving.service.CoalescingService` wraps a
batcher fleet in an asyncio front-end over the
:class:`~repro.core.registry.SessionRegistry` with budget-aware admission
control and background housekeeping.  See ``docs/serving.md`` for the
operational story.
"""

from repro.serving.batcher import BatcherStats, ContractBatcher
from repro.serving.service import CoalescingService

__all__ = ["BatcherStats", "CoalescingService", "ContractBatcher"]
