"""Asyncio serving front-end: coalescing batchers over a session registry.

:class:`CoalescingService` is the deployment-facing tier.  It composes the
pieces below it into one request path:

* a :class:`~repro.core.registry.SessionRegistry` owns the (model,
  dataset) fleet under its global byte budget;
* one :class:`~repro.serving.batcher.ContractBatcher` per registry key
  coalesces that key's concurrent contracts into fused dispatches;
* asyncio entry points (:meth:`CoalescingService.answer`,
  :meth:`CoalescingService.train_to`) run the blocking batcher waits on an
  executor so an event-loop server can await thousands of in-flight
  contracts while the batchers fuse them underneath.

**Admission control.**  Every submission passes the batcher's bounded
queue; on top of that the service tightens admission while the registry's
byte pool is *hot* (used bytes at or above
``hot_bytes_fraction × max_total_bytes``): new requests are then admitted
only while the key's queue is shallower than one batching window, so a
saturated fleet sheds load (raising
:class:`~repro.exceptions.ServingOverloadError`, which callers should
treat as retryable) instead of growing queues without bound while every
cache behind them is already thrashing.  The budget check memoises the
registry stats snapshot for 100 ms so admission stays O(1) per request.

**Housekeeping.**  A daemon thread runs off the request path every
``housekeeping_seconds``: a traffic-weighted
:meth:`~repro.core.registry.SessionRegistry.rebalance` with
``rebalance_drift`` hysteresis (shares only move when traffic genuinely
shifted), idle-session eviction after ``idle_evict_seconds``, and closing
batchers whose session the registry no longer owns (evicted or
invalidated) so a later request constructs a fresh pair.

**Observability.**  :meth:`batching_stats` merges every batcher's
:class:`~repro.serving.batcher.BatcherStats` and is attached to the
registry via
:meth:`~repro.core.registry.SessionRegistry.attach_serving_stats`, so one
``service.stats()`` call reports fleet occupancy, byte usage *and* the
coalescing counters (``stats().serving``).
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor

from typing import Any

from repro.config import (
    DEFAULT_COALESCE_MAX_BATCH,
    DEFAULT_COALESCE_MAX_QUEUE,
    DEFAULT_COALESCE_WINDOW_MS,
    DEFAULT_SERVICE_HOT_BYTES_FRACTION,
    DEFAULT_SERVICE_HOUSEKEEPING_SECONDS,
    DEFAULT_SERVICE_IDLE_EVICT_SECONDS,
    DEFAULT_SERVICE_REBALANCE_DRIFT,
)
from repro.core.contract import ApproximationContract
from repro.core.registry import RegistryStats, SessionRegistry
from repro.core.result import ApproximateTrainingResult
from repro.core.session import SessionAnswer
from repro.data.dataset import Dataset
from repro.data.store import ShardedDataset
from repro.data.store.warm_cache import WarmCacheTier
from repro.exceptions import ServingError
from repro.models.base import ModelClassSpec
from repro.obs import (
    MetricsSnapshot,
    get_metrics,
    get_tracer,
    obs_enabled,
    render_json,
    render_prometheus,
)
from repro.obs.bridge import bridge_registry_stats
from repro.serving.batcher import BatcherStats, ContractBatcher


class CoalescingService:
    """Coalescing, budget-aware serving front-end over a session fleet.

    Parameters
    ----------
    registry:
        The :class:`~repro.core.registry.SessionRegistry` to serve from
        (``None`` constructs one with the defaults).  The service attaches
        its :meth:`batching_stats` provider to it, so
        ``registry.stats().serving`` reports the coalescing counters.
    warm_cache:
        Forwarded to the default-constructed registry
        (:class:`~repro.core.registry.SessionRegistry`'s ``warm_cache``):
        the cross-process warm tier every member session shares, so a
        restarted service answers repeat contracts with zero streamed
        passes.  When ``registry`` is passed explicitly this must stay
        ``None`` — configure the tier on the registry you construct.
    window_ms / max_batch / max_queue:
        Per-key :class:`~repro.serving.batcher.ContractBatcher` parameters
        (see that class).
    housekeeping_seconds:
        Period of the background housekeeping thread (rebalance + idle
        eviction + stale-batcher cleanup).  ``start_housekeeping=False``
        disables the thread; :meth:`housekeep_once` can then be driven
        manually (tests, external schedulers).
    idle_evict_seconds:
        Sessions idle longer than this are evicted by housekeeping
        (0 disables idle eviction).
    rebalance_drift:
        Hysteresis passed to :meth:`SessionRegistry.rebalance` — periodic
        rebalances apply only when some member's share would move by more
        than this relative fraction.
    hot_bytes_fraction:
        The pool-usage fraction at which admission tightens.  Fractions
        >= 1 with a bounded pool effectively disable tightening (the
        registry keeps usage below the pool structurally).
    """

    def __init__(
        self,
        registry: SessionRegistry | None = None,
        *,
        window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
        max_batch: int = DEFAULT_COALESCE_MAX_BATCH,
        max_queue: int = DEFAULT_COALESCE_MAX_QUEUE,
        housekeeping_seconds: float = DEFAULT_SERVICE_HOUSEKEEPING_SECONDS,
        idle_evict_seconds: float = DEFAULT_SERVICE_IDLE_EVICT_SECONDS,
        rebalance_drift: float = DEFAULT_SERVICE_REBALANCE_DRIFT,
        hot_bytes_fraction: float = DEFAULT_SERVICE_HOT_BYTES_FRACTION,
        start_housekeeping: bool = True,
        warm_cache: WarmCacheTier | str | os.PathLike[str] | bool | None = None,
    ):
        if registry is not None and warm_cache is not None:
            raise ServingError(
                "serving: pass warm_cache through the registry you construct, "
                "not alongside an explicit registry"
            )
        self.registry = (
            registry
            if registry is not None
            else SessionRegistry(warm_cache=warm_cache)
        )
        self._window_ms = float(window_ms)
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue)
        self._housekeeping_seconds = float(housekeeping_seconds)
        self._idle_evict_seconds = float(idle_evict_seconds)
        self._rebalance_drift = float(rebalance_drift)
        self._hot_bytes_fraction = float(hot_bytes_fraction)
        self._lock = threading.Lock()
        self._batchers: dict[object, ContractBatcher] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        # Memoised budget-pressure probe: registry.stats() walks the whole
        # fleet, far too heavy per request, so admission reads a snapshot
        # at most once per 100 ms.
        self._hot_checked_at = float("-inf")  # guarded-by: _lock
        self._hot = False  # guarded-by: _lock
        # Retired stats so closed batchers' history survives in aggregates.
        self._retired_stats = BatcherStats()  # guarded-by: _lock
        # The async entry points park blocking waits here.  Each wait is an
        # enqueue plus an event sleep (the fused dispatch runs on the
        # batcher's own thread), so waiters are cheap — but the pool must
        # be wider than a batching window, or the windows themselves get
        # serialised behind executor capacity.  asyncio's default executor
        # sizes by CPU count, which on small hosts is narrower than one
        # window and silently splits batches.
        self._waiters = ThreadPoolExecutor(
            max_workers=max(32, 4 * self._max_batch),
            thread_name_prefix="repro-serving-wait",
        )
        self.registry.attach_serving_stats(self.batching_stats)
        # Scrape-time bridge: every metrics snapshot (Prometheus text, JSON,
        # ``python -m repro.obs``) folds the fleet's RegistryStats — cache
        # roll-ups, per-session shares, warm tier, coalescing counters —
        # into the global registry.  Cost is per scrape, never per request;
        # deregistered in close().
        self._metrics_collector = lambda: bridge_registry_stats(
            get_metrics(), self.stats()
        )
        get_metrics().add_collector(self._metrics_collector)
        self._stop = threading.Event()
        self._housekeeper: threading.Thread | None = None
        if start_housekeeping:
            self._housekeeper = threading.Thread(
                target=self._housekeeping_loop,
                name="repro-serving-housekeeping",
                daemon=True,
            )
            self._housekeeper.start()

    # ------------------------------------------------------------------
    # Batcher resolution
    # ------------------------------------------------------------------
    def batcher(
        self,
        key: object,
        spec: ModelClassSpec | None = None,
        train: Dataset | ShardedDataset | None = None,
        holdout: Dataset | ShardedDataset | None = None,
        **session_kwargs: Any,
    ) -> ContractBatcher:
        """The live batcher for ``key``, creating session + batcher if needed.

        With ``spec``/``train``/``holdout`` the session is resolved through
        :meth:`SessionRegistry.get_or_create` (constructing it on first
        use, fingerprint-checking the data on every call); without them the
        key must already be live in the registry.  A batcher whose session
        the registry has since replaced (fingerprint invalidation, evict +
        re-create) is closed and rebuilt around the current session, so
        stale sessions are never served through a cached batcher.
        """
        if self._closed:
            raise ServingError("serving: service is closed")
        if spec is not None:
            session = self.registry.get_or_create(
                key, spec, train, holdout, **session_kwargs
            )
        else:
            session = self.registry.get(key)
            if session is None:
                raise ServingError(
                    f"serving: no live session for key {key!r}; pass "
                    "spec/train/holdout to construct one"
                )
        with self._lock:
            if self._closed:
                raise ServingError("serving: service is closed")
            batcher = self._batchers.get(key)
            if batcher is not None and batcher.session is not session:
                self._retire_locked(key, batcher)
                batcher = None
            if batcher is None:
                batcher = ContractBatcher(
                    session,
                    window_ms=self._window_ms,
                    max_batch=self._max_batch,
                    max_queue=self._max_queue,
                    admission=self._admission,
                    name=str(key),
                )
                self._batchers[key] = batcher
            return batcher

    def _retire_locked(self, key: object, batcher: ContractBatcher) -> None:  # repro-lint: holds=_lock
        """Drop a batcher from the map, folding its counters into history."""
        self._retired_stats = self._retired_stats.merge(batcher.stats())
        del self._batchers[key]
        # close() drains the old batcher's queue on its own dispatcher
        # thread; don't join it while holding the service lock.
        batcher.close(wait=False)

    # ------------------------------------------------------------------
    # Blocking entry points
    # ------------------------------------------------------------------
    def answer_sync(
        self,
        key: object,
        contract: ApproximationContract,
        *,
        timeout: float | None = None,
        **resolve_kwargs: Any,
    ) -> SessionAnswer:
        """Coalesced ``answer()`` for ``key``'s session; blocks for the result."""
        return self.batcher(key, **resolve_kwargs).answer(contract, timeout=timeout)

    def train_to_sync(
        self,
        key: object,
        contract: ApproximationContract,
        *,
        recompute_at_theta_n: bool = False,
        timeout: float | None = None,
        **resolve_kwargs: Any,
    ) -> ApproximateTrainingResult:
        """Coalesced ``train_to()`` for ``key``'s session; blocks for the result."""
        return self.batcher(key, **resolve_kwargs).train_to(
            contract, recompute_at_theta_n=recompute_at_theta_n, timeout=timeout
        )

    # ------------------------------------------------------------------
    # Asyncio entry points
    # ------------------------------------------------------------------
    async def answer(
        self,
        key: object,
        contract: ApproximationContract,
        *,
        timeout: float | None = None,
        **resolve_kwargs: Any,
    ) -> SessionAnswer:
        """Awaitable coalesced ``answer()``.

        The blocking batcher wait runs on the service's waiter pool (sized
        past the batching window, so concurrent awaits against one key all
        land in one window and are fused).  Raises
        :class:`~repro.exceptions.ServingOverloadError` when load-shed.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._waiters,
            self._spanned(
                "service.answer",
                key,
                lambda: self.answer_sync(
                    key, contract, timeout=timeout, **resolve_kwargs
                ),
            ),
        )

    async def train_to(
        self,
        key: object,
        contract: ApproximationContract,
        *,
        recompute_at_theta_n: bool = False,
        timeout: float | None = None,
        **resolve_kwargs: Any,
    ) -> ApproximateTrainingResult:
        """Awaitable coalesced ``train_to()`` (see :meth:`answer`)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._waiters,
            self._spanned(
                "service.train_to",
                key,
                lambda: self.train_to_sync(
                    key,
                    contract,
                    recompute_at_theta_n=recompute_at_theta_n,
                    timeout=timeout,
                    **resolve_kwargs,
                ),
            ),
        )

    def _spanned(
        self, name: str, key: object, work: "Callable[[], Any]"
    ) -> "Callable[[], Any]":
        """Wrap a waiter-pool callable in a span parented to the caller's.

        Context variables flow into asyncio tasks but *not* into
        ``ThreadPoolExecutor`` workers, so the submitting task's current
        span is captured here — still on the event loop — and re-activated
        inside the worker (:meth:`~repro.obs.tracing.Tracer.activate`).
        The ``service.*`` span then joins the request's trace even though
        the blocking batcher wait runs on a pool thread.
        """
        if not obs_enabled():
            return work
        tracer = get_tracer()
        parent = tracer.current_span()

        def traced() -> Any:
            with tracer.activate(parent), tracer.span(name, key=str(key)):
                return work()

        return traced

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admission(self, queue_depth: int) -> bool:
        """Per-submission admission policy handed to every batcher.

        Normal operation admits anything below the batcher's own
        ``max_queue`` bound (the batcher enforces that itself).  While the
        byte pool is hot, admission tightens to one batching window per
        key: the fleet is already evicting useful cache entries, so
        letting queues grow past what the next dispatch can absorb only
        multiplies the thrash.
        """
        if self._budget_hot():
            return queue_depth < self._max_batch
        return True

    def _budget_hot(self) -> bool:
        pool = self.registry.max_total_bytes
        if pool is None or self._hot_bytes_fraction <= 0:
            return False
        now = time.monotonic()
        with self._lock:
            if now - self._hot_checked_at < 0.1:
                return self._hot
            self._hot_checked_at = now
        hot = self.registry.stats().bytes >= pool * self._hot_bytes_fraction
        with self._lock:
            self._hot = hot
        return hot

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _housekeeping_loop(self) -> None:
        while not self._stop.wait(self._housekeeping_seconds):
            try:
                self.housekeep_once()
            except Exception:  # pragma: no cover - keep the loop alive
                pass

    def housekeep_once(self) -> dict[str, object]:
        """One housekeeping round; returns what it did (for tests/operators).

        Off the request path: periodic traffic-weighted rebalance (with
        drift hysteresis), idle-session eviction, and closing batchers
        whose session the registry no longer owns.
        """
        rebalanced = self.registry.rebalance(min_drift=self._rebalance_drift)
        evicted = 0
        if self._idle_evict_seconds > 0:
            evicted = self.registry.evict_idle(self._idle_evict_seconds)
        dropped = self._drop_stale_batchers()
        return {
            "rebalanced": rebalanced,
            "sessions_evicted": evicted,
            "batchers_dropped": dropped,
        }

    def _drop_stale_batchers(self) -> int:
        with self._lock:
            stale = [
                (key, batcher)
                for key, batcher in self._batchers.items()
                if self.registry.get(key) is not batcher.session
            ]
            for key, batcher in stale:
                self._retire_locked(key, batcher)
        return len(stale)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def batching_stats(self) -> BatcherStats:
        """Every batcher's counters (live + retired) merged into one snapshot."""
        with self._lock:
            batchers = list(self._batchers.values())
            merged = self._retired_stats
        for batcher in batchers:
            merged = merged.merge(batcher.stats())
        return merged

    def stats(self) -> RegistryStats:
        """The registry snapshot, with :attr:`RegistryStats.serving` populated."""
        return self.registry.stats()

    def metrics_snapshot(self) -> MetricsSnapshot:
        """One frozen scrape of the global metrics registry.

        Runs the registered collectors first — including this service's
        fleet bridge — so the snapshot carries the streamed-pass counters,
        latency histograms *and* the cache/warm/batcher/registry roll-ups
        in a single mergeable, picklable value.
        """
        return get_metrics().snapshot()

    def prometheus_metrics(self) -> str:
        """The scrape in Prometheus text-exposition format."""
        return render_prometheus(self.metrics_snapshot())

    def json_metrics(self) -> str:
        """The scrape as deterministic JSON (see :func:`repro.obs.render_json`)."""
        return render_json(self.metrics_snapshot())

    def flush(self) -> None:
        """Block until every queued request in every batcher has completed."""
        with self._lock:
            batchers = list(self._batchers.values())
        for batcher in batchers:
            batcher.flush()

    def close(self) -> None:
        """Stop housekeeping, drain and close every batcher.  Idempotent.

        The registry (and its sessions) stays usable — the service owns
        only the coalescing tier on top of it — but the serving stats
        provider is detached.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            batchers = list(self._batchers.items())
            self._batchers.clear()
            for _, batcher in batchers:
                self._retired_stats = self._retired_stats.merge(batcher.stats())
        get_metrics().remove_collector(self._metrics_collector)
        self._stop.set()
        if self._housekeeper is not None:
            self._housekeeper.join()
        for _, batcher in batchers:
            batcher.close()
        self._waiters.shutdown(wait=False)

    def __enter__(self) -> "CoalescingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    async def __aenter__(self) -> "CoalescingService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.batching_stats()
        return (
            f"CoalescingService(keys={len(self._batchers)}, "
            f"batches={snapshot.batches}, requests={snapshot.requests}, "
            f"passes_saved={snapshot.passes_saved})"
        )
