"""Per-session request coalescing: one dispatch serves a window of callers.

The economics this tier exists for: a session's dominant serving cost is
the streamed holdout pass behind each sample-size-search round, and
concurrent *distinct* (ε, δ) contracts each pay their own rounds even
though the candidate evaluations could share every pass.  A
:class:`ContractBatcher` sits in front of one
:class:`~repro.core.session.EstimationSession` and

* collects concurrent ``answer()`` / ``train_to()`` submissions for a
  short batching window (``window_ms``, capped at ``max_batch`` requests);
* dedupes identical requests — same kind, same (ε, δ), same flags — into
  single-flight followers (counted in ``coalesced_requests``; the
  session's own single-flight caches guarantee followers get the leader's
  bitwise-identical result);
* dispatches the distinct survivors as *one* fused evaluation:
  :meth:`~repro.core.session.EstimationSession.answer_many` for answers
  (one shared difference vector) and
  :meth:`~repro.core.session.EstimationSession.train_to_many` for training
  requests (one lockstep fused size search — every active search's
  candidates ride one streamed union pass per round);
* demultiplexes the per-request results back to the waiting callers,
  bitwise identical to what each serial call would have returned.

Backpressure is a bounded queue: a submission finding ``max_queue``
requests already waiting — or rejected by the pluggable ``admission``
policy (the service wires registry byte-budget pressure through it) — is
load-shed immediately with
:class:`~repro.exceptions.ServingOverloadError` instead of queueing
unboundedly.

If a fused dispatch raises, the batcher falls back to serial per-request
execution so one poisoned contract (e.g. a validation error) fails only
its own caller, not everyone who shared the window.

Thread model: submissions may come from any thread (the asyncio service
calls through an executor); a single daemon dispatcher thread per batcher
owns the batching loop, started lazily on first submission and joined by
:meth:`ContractBatcher.close`.  All counters are guarded by the batcher
condition variable and exposed as an immutable :class:`BatcherStats`
snapshot, which the service aggregates and the registry rolls into
``registry.stats().serving``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.config import (
    DEFAULT_COALESCE_MAX_BATCH,
    DEFAULT_COALESCE_MAX_QUEUE,
    DEFAULT_COALESCE_WINDOW_MS,
)
from repro.core.contract import ApproximationContract
from repro.core.result import ApproximateTrainingResult
from repro.core.session import EstimationSession, SessionAnswer
from repro.exceptions import BlinkMLError, ServingError, ServingOverloadError
from repro.obs import get_metrics, maybe_span, obs_enabled

# Queue-wait *distribution* (repro.obs, telemetry-gated): the cumulative
# totals live in BatcherStats (bridged to gauges at scrape time); the
# histogram adds per-request latency quantiles the totals cannot recover.
_QUEUE_WAIT_SECONDS = get_metrics().histogram(
    "repro_coalescing_queue_wait_latency_seconds",
    "Per-request time spent queued in the coalescing window before its "
    "batch dispatched.",
)


@dataclass(frozen=True)
class BatcherStats:
    """Immutable coalescing counters (per batcher, or service-aggregated).

    Attributes
    ----------
    batches:
        Dispatches executed (each served one batching window).
    requests:
        Requests completed through those dispatches.
    coalesced_requests:
        Requests that were in-window duplicates of another request (same
        kind, contract and flags) — followers that rode a leader's
        evaluation instead of paying their own.
    answer_requests / train_requests:
        The per-kind split of ``requests``.
    fused_passes / serial_passes:
        Exact size-search pass accounting summed over every fused
        ``train_to_many`` dispatch (see
        :class:`~repro.core.session.CoalescedTrainOutcome`): rounds
        actually executed versus what the same contracts would have cost
        serially.  ``passes_saved`` is their difference — exact, because
        each member search follows the identical bracket trajectory fused
        or serial.
    load_shed:
        Submissions rejected by backpressure (queue full or admission
        policy) with :class:`~repro.exceptions.ServingOverloadError`.
    max_queue_depth:
        High-water mark of requests waiting in the queue.
    window_slots:
        ``batches × max_batch`` — the denominator of ``window_occupancy``.
    queue_wait_seconds / max_queue_wait_seconds:
        Total and worst time requests spent queued before their dispatch
        started.
    """

    batches: int = 0
    requests: int = 0
    coalesced_requests: int = 0
    answer_requests: int = 0
    train_requests: int = 0
    fused_passes: int = 0
    serial_passes: int = 0
    load_shed: int = 0
    max_queue_depth: int = 0
    window_slots: int = 0
    queue_wait_seconds: float = 0.0
    max_queue_wait_seconds: float = 0.0

    @property
    def passes_saved(self) -> int:
        """Streamed size-search passes coalescing avoided (exact)."""
        return self.serial_passes - self.fused_passes

    @property
    def window_occupancy(self) -> float:
        """Mean fraction of the batch capacity each dispatch actually filled."""
        return self.requests / self.window_slots if self.window_slots else 0.0

    @property
    def mean_queue_wait_seconds(self) -> float:
        return self.queue_wait_seconds / self.requests if self.requests else 0.0

    def merge(self, other: "BatcherStats") -> "BatcherStats":
        """Aggregate two snapshots (sums; maxima for the high-water marks)."""
        return BatcherStats(
            batches=self.batches + other.batches,
            requests=self.requests + other.requests,
            coalesced_requests=self.coalesced_requests + other.coalesced_requests,
            answer_requests=self.answer_requests + other.answer_requests,
            train_requests=self.train_requests + other.train_requests,
            fused_passes=self.fused_passes + other.fused_passes,
            serial_passes=self.serial_passes + other.serial_passes,
            load_shed=self.load_shed + other.load_shed,
            max_queue_depth=max(self.max_queue_depth, other.max_queue_depth),
            window_slots=self.window_slots + other.window_slots,
            queue_wait_seconds=self.queue_wait_seconds + other.queue_wait_seconds,
            max_queue_wait_seconds=max(
                self.max_queue_wait_seconds, other.max_queue_wait_seconds
            ),
        )


class _Request:
    """One waiting caller: its ask, its completion event, its outcome."""

    __slots__ = (
        "kind",
        "contract",
        "recompute",
        "event",
        "result",
        "error",
        "enqueued_at",
    )

    def __init__(self, kind: str, contract: ApproximationContract, recompute: bool):
        self.kind = kind
        self.contract = contract
        self.recompute = recompute
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.enqueued_at = time.monotonic()

    def dedupe_key(self) -> tuple:
        return (self.kind, self.contract, self.recompute)


class ContractBatcher:
    """Coalesces concurrent contract requests against one session.

    Parameters
    ----------
    session:
        The :class:`~repro.core.session.EstimationSession` every batch is
        dispatched against.
    window_ms:
        How long the dispatcher holds the first request of a batch open
        for more arrivals (0 disables the wait: each dispatch takes
        whatever is queued the moment it wakes).  A couple of milliseconds
        is far below a streamed search round, so the added latency is
        noise next to the passes it saves.
    max_batch:
        Most requests one dispatch may serve; arrivals beyond it wait for
        the next window.
    max_queue:
        Backpressure bound: a submission finding this many requests
        already queued is load-shed with
        :class:`~repro.exceptions.ServingOverloadError`.
    admission:
        Optional ``callable(queue_depth) -> bool`` consulted on every
        submission *before* the queue bound; returning False load-sheds.
        The serving front-end uses it to tighten admission while the
        registry byte budget is hot.
    name:
        Label used in error messages (the service passes the session key).
    """

    def __init__(
        self,
        session: EstimationSession,
        *,
        window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
        max_batch: int = DEFAULT_COALESCE_MAX_BATCH,
        max_queue: int = DEFAULT_COALESCE_MAX_QUEUE,
        admission: Callable[[int], bool] | None = None,
        name: str = "session",
    ):
        if window_ms < 0:
            raise BlinkMLError(f"batcher: window_ms must be >= 0, got {window_ms}")
        if max_batch < 1:
            raise BlinkMLError(f"batcher: max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise BlinkMLError(f"batcher: max_queue must be >= 1, got {max_queue}")
        self._session = session
        self._window_seconds = float(window_ms) / 1000.0
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue)
        self._admission = admission
        self._name = str(name)
        self._cond = threading.Condition()
        self._queue: deque[_Request] = deque()  # guarded-by: _cond
        self._inflight = 0  # guarded-by: _cond
        self._closed = False  # guarded-by: _cond
        self._thread: threading.Thread | None = None  # guarded-by: _cond
        # Counters (all guarded by the condition variable).
        self._batches = 0  # guarded-by: _cond
        self._requests = 0  # guarded-by: _cond
        self._coalesced = 0  # guarded-by: _cond
        self._answer_requests = 0  # guarded-by: _cond
        self._train_requests = 0  # guarded-by: _cond
        self._fused_passes = 0  # guarded-by: _cond
        self._serial_passes = 0  # guarded-by: _cond
        self._load_shed = 0  # guarded-by: _cond
        self._max_queue_depth = 0  # guarded-by: _cond
        self._window_slots = 0  # guarded-by: _cond
        self._queue_wait_seconds = 0.0  # guarded-by: _cond
        self._max_queue_wait_seconds = 0.0  # guarded-by: _cond

    @property
    def session(self) -> EstimationSession:
        """The session this batcher dispatches against."""
        return self._session

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def max_queue(self) -> int:
        return self._max_queue

    # ------------------------------------------------------------------
    # Submission surface
    # ------------------------------------------------------------------
    def answer(
        self, contract: ApproximationContract, timeout: float | None = None
    ) -> SessionAnswer:
        """Coalesced :meth:`EstimationSession.answer` — blocks for the result."""
        return self._submit("answer", contract, False, timeout)

    def train_to(
        self,
        contract: ApproximationContract,
        *,
        recompute_at_theta_n: bool = False,
        timeout: float | None = None,
    ) -> ApproximateTrainingResult:
        """Coalesced :meth:`EstimationSession.train_to` — blocks for the result."""
        return self._submit("train", contract, bool(recompute_at_theta_n), timeout)

    def _submit(
        self,
        kind: str,
        contract: ApproximationContract,
        recompute: bool,
        timeout: float | None,
    ) -> Any:
        request = _Request(kind, contract, recompute)
        with self._cond:
            if self._closed:
                raise ServingError(f"batcher for {self._name!r} is closed")
            depth = len(self._queue)
            if depth >= self._max_queue or (
                self._admission is not None and not self._admission(depth)
            ):
                self._load_shed += 1
                raise ServingOverloadError(
                    f"batcher for {self._name!r} shed a {kind} request "
                    f"(queue depth {depth}, bound {self._max_queue})"
                )
            self._queue.append(request)
            self._max_queue_depth = max(self._max_queue_depth, depth + 1)
            self._ensure_dispatcher_locked()
            self._cond.notify_all()
        if not request.event.wait(timeout):
            raise ServingError(
                f"batcher for {self._name!r}: {kind} request timed out "
                f"after {timeout} s (still queued or executing)"
            )
        if request.error is not None:
            raise request.error
        return request.result

    def _ensure_dispatcher_locked(self) -> None:  # repro-lint: holds=_cond
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run,
                name=f"repro-batcher-{self._name}",
                daemon=True,
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Batching window: the first request holds the window open
                # so concurrent callers can join; a full batch or close()
                # dispatches immediately.
                deadline = time.monotonic() + self._window_seconds
                while len(self._queue) < self._max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self._max_batch))
                ]
                self._inflight += 1
            try:
                self._execute(batch)
            finally:
                for request in batch:
                    request.event.set()
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    def _execute(self, batch: list[_Request]) -> None:
        started = time.monotonic()
        waits = [started - request.enqueued_at for request in batch]
        duplicates = Counter(request.dedupe_key() for request in batch)
        answers = [request for request in batch if request.kind == "answer"]
        trains = [request for request in batch if request.kind == "train"]
        coalesced = sum(count - 1 for count in duplicates.values())
        if obs_enabled():
            for wait in waits:
                _QUEUE_WAIT_SECONDS.observe(wait)
        with maybe_span(
            "coalescing.dispatch",
            batch=len(batch),
            coalesced=coalesced,
            answers=len(answers),
            trains=len(trains),
            window_slots=self._max_batch,
        ) as span:
            fused, serial = self._execute_batch(batch, answers, trains)
            if span is not None:
                span.set_attribute("fused_passes", fused)
                span.set_attribute("serial_passes", serial)
        with self._cond:
            self._batches += 1
            self._requests += len(batch)
            self._window_slots += self._max_batch
            self._coalesced += coalesced
            self._answer_requests += len(answers)
            self._train_requests += len(trains)
            self._fused_passes += fused
            self._serial_passes += serial
            self._queue_wait_seconds += sum(waits)
            self._max_queue_wait_seconds = max(
                self._max_queue_wait_seconds, max(waits, default=0.0)
            )

    def _execute_batch(
        self,
        batch: list[_Request],
        answers: list[_Request],
        trains: list[_Request],
    ) -> tuple[int, int]:
        """Run one fused dispatch; returns the (fused, serial) pass counts."""
        fused = serial = 0
        try:
            if answers:
                results = self._session.answer_many(
                    [request.contract for request in answers]
                )
                for request, result in zip(answers, results):
                    request.result = result
            # recompute_at_theta_n is a per-request flag; fuse per flag value
            # (mixing them in one train_to_many would change members' results).
            for recompute in (False, True):
                group = [r for r in trains if r.recompute is recompute]
                if not group:
                    continue
                outcome = self._session.train_to_many(
                    [request.contract for request in group],
                    recompute_at_theta_n=recompute,
                )
                for request, result in zip(group, outcome.results):
                    request.result = result
                fused += outcome.fused_search_passes
                serial += outcome.serial_search_passes
        except Exception:
            # Fused dispatch failed (e.g. one contract fails validation):
            # retry each unresolved request serially so only the offending
            # caller sees its error.  Deterministic caches make the retry
            # identical to a first-time serial call.
            for request in batch:
                if request.result is not None:
                    continue
                try:
                    if request.kind == "answer":
                        request.result = self._session.answer(request.contract)
                    else:
                        request.result = self._session.train_to(
                            request.contract,
                            recompute_at_theta_n=request.recompute,
                        )
                except Exception as exc:  # noqa: BLE001 - handed to the caller
                    request.error = exc
        return fused, serial

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Block until every request enqueued so far has completed."""
        with self._cond:
            while self._queue or self._inflight:
                self._cond.wait(timeout=0.05)

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting submissions; drain the queue, then stop the dispatcher.

        Requests already queued are still served (the window is cut short);
        submissions after close raise :class:`~repro.exceptions.ServingError`.
        Idempotent.
        """
        with self._cond:
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        if wait and thread is not None and thread is not threading.current_thread():
            thread.join()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __enter__(self) -> "ContractBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> BatcherStats:
        """An immutable snapshot of the coalescing counters."""
        with self._cond:
            return BatcherStats(
                batches=self._batches,
                requests=self._requests,
                coalesced_requests=self._coalesced,
                answer_requests=self._answer_requests,
                train_requests=self._train_requests,
                fused_passes=self._fused_passes,
                serial_passes=self._serial_passes,
                load_shed=self._load_shed,
                max_queue_depth=self._max_queue_depth,
                window_slots=self._window_slots,
                queue_wait_seconds=self._queue_wait_seconds,
                max_queue_wait_seconds=self._max_queue_wait_seconds,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats()
        return (
            f"ContractBatcher({self._name!r}, batches={snapshot.batches}, "
            f"requests={snapshot.requests}, "
            f"coalesced={snapshot.coalesced_requests}, "
            f"passes_saved={snapshot.passes_saved})"
        )
