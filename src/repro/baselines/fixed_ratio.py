"""FixedRatio baseline: always train on a fixed fraction of the data.

Section 5.4: "FixedRatio always used 1% samples for training approximate
models."  Because the fraction ignores both the model and the requested
accuracy, it either under-delivers (violates the accuracy request) or
over-spends (uses far more data than needed) — which is exactly the failure
mode Figure 7 illustrates.
"""

from __future__ import annotations

from repro.baselines.base import BaselineRunResult, SampleSizeBaseline
from repro.core.contract import ApproximationContract
from repro.data.dataset import Dataset
from repro.exceptions import SampleSizeError
from repro.models.base import ModelClassSpec


class FixedRatioBaseline(SampleSizeBaseline):
    """Train on ``ratio`` of the rows regardless of the contract."""

    policy_name = "fixed_ratio"

    def __init__(
        self,
        spec: ModelClassSpec,
        ratio: float = 0.01,
        seed: int | None = None,
        optimizer: str | None = None,
    ):
        super().__init__(spec, seed=seed, optimizer=optimizer)
        if not 0.0 < ratio <= 1.0:
            raise SampleSizeError("ratio must lie in (0, 1]")
        self.ratio = ratio

    def run(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> BaselineRunResult:
        del holdout, contract  # the policy ignores both
        sample_size = max(1, int(round(self.ratio * train.n_rows)))
        model, elapsed = self._train_on_sample(train, sample_size)
        return BaselineRunResult(
            model=model,
            sample_size=sample_size,
            training_seconds=elapsed,
            n_models_trained=1,
            policy=self.policy_name,
            metadata={"ratio": self.ratio},
        )
