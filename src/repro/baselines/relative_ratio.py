"""RelativeRatio baseline: sample fraction proportional to requested accuracy.

Section 5.4: "RelativeRatio used (1 − ε) * 10% samples for training
approximate models (e.g., 9.5% sample for 95% requested accuracy)."  The
fraction scales with the request but is still model-agnostic, so it tends to
be far more expensive than necessary while offering no guarantee.
"""

from __future__ import annotations

from repro.baselines.base import BaselineRunResult, SampleSizeBaseline
from repro.core.contract import ApproximationContract
from repro.data.dataset import Dataset
from repro.exceptions import SampleSizeError
from repro.models.base import ModelClassSpec


class RelativeRatioBaseline(SampleSizeBaseline):
    """Train on ``(1 − ε) * scale`` of the rows."""

    policy_name = "relative_ratio"

    def __init__(
        self,
        spec: ModelClassSpec,
        scale: float = 0.10,
        seed: int | None = None,
        optimizer: str | None = None,
    ):
        super().__init__(spec, seed=seed, optimizer=optimizer)
        if not 0.0 < scale <= 1.0:
            raise SampleSizeError("scale must lie in (0, 1]")
        self.scale = scale

    def run(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> BaselineRunResult:
        del holdout
        fraction = contract.requested_accuracy * self.scale
        sample_size = max(1, int(round(fraction * train.n_rows)))
        model, elapsed = self._train_on_sample(train, sample_size)
        return BaselineRunResult(
            model=model,
            sample_size=sample_size,
            training_seconds=elapsed,
            n_models_trained=1,
            policy=self.policy_name,
            metadata={"fraction": fraction},
        )
