"""Common interface and result record for the sample-size baselines."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.contract import ApproximationContract
from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler
from repro.models.base import ModelClassSpec, TrainedModel


@dataclass
class BaselineRunResult:
    """Outcome of training one approximate model under a baseline policy.

    Attributes
    ----------
    model:
        The trained (approximate) model.
    sample_size:
        Number of training rows the final model consumed.
    training_seconds:
        Total wall-clock time the policy spent (including any intermediate
        models it had to train, as IncEstimator does).
    n_models_trained:
        How many models the policy trained along the way.
    policy:
        Short name of the policy (used in the Figure 7 tables).
    """

    model: TrainedModel
    sample_size: int
    training_seconds: float
    n_models_trained: int
    policy: str
    metadata: dict = field(default_factory=dict)


class SampleSizeBaseline(ABC):
    """A policy that picks a sample size and trains an approximate model."""

    policy_name = "baseline"

    def __init__(self, spec: ModelClassSpec, seed: int | None = None, optimizer: str | None = None):
        self.spec = spec
        self.optimizer = optimizer
        self._rng = np.random.default_rng(seed)

    @abstractmethod
    def run(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> BaselineRunResult:
        """Train an approximate model according to the policy."""

    # Helper shared by the concrete baselines -------------------------------
    def _train_on_sample(
        self, train: Dataset, sample_size: int
    ) -> tuple[TrainedModel, float]:
        sample_size = int(min(max(sample_size, 1), train.n_rows))
        sampler = UniformSampler(train, rng=self._rng)
        sample = sampler.sample(sample_size)
        start = time.perf_counter()
        model = self.spec.fit(sample, method=self.optimizer)
        elapsed = time.perf_counter() - start
        return model, elapsed
