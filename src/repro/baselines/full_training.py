"""Full-training baseline: the traditional ML-library behaviour.

Trains on the entire dataset, ignoring the approximation contract.  Every
speed-up number in the Figure 5 / Table 4 reproduction is relative to this
baseline.
"""

from __future__ import annotations

import time

from repro.baselines.base import BaselineRunResult, SampleSizeBaseline
from repro.core.contract import ApproximationContract
from repro.data.dataset import Dataset


class FullTrainingBaseline(SampleSizeBaseline):
    """Always train the exact full model m_N."""

    policy_name = "full_training"

    def run(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> BaselineRunResult:
        del holdout, contract
        start = time.perf_counter()
        model = self.spec.fit(train, method=self.optimizer)
        elapsed = time.perf_counter() - start
        return BaselineRunResult(
            model=model,
            sample_size=train.n_rows,
            training_seconds=elapsed,
            n_models_trained=1,
            policy=self.policy_name,
        )
