"""Sample-size selection baselines used in the Section 5.4 comparison.

BlinkML's Sample Size Estimator is compared against three simpler policies:

* :class:`repro.baselines.fixed_ratio.FixedRatioBaseline` — always trains on
  a fixed fraction (1 % in the paper) of the data, regardless of the model
  or the requested accuracy;
* :class:`repro.baselines.relative_ratio.RelativeRatioBaseline` — uses a
  fraction proportional to the requested accuracy ((1 − ε)·10 %);
* :class:`repro.baselines.incremental.IncrementalEstimatorBaseline`
  (IncEstimator) — trains models on growing samples (1000·k² at the k-th
  iteration) until the trained model's *estimated* accuracy meets the
  request;
* :class:`repro.baselines.full_training.FullTrainingBaseline` — the
  traditional approach: always train on everything.

Each baseline returns the same :class:`BaselineRunResult` record so the
Figure 7 benchmark can tabulate them side by side.
"""

from repro.baselines.base import BaselineRunResult, SampleSizeBaseline
from repro.baselines.fixed_ratio import FixedRatioBaseline
from repro.baselines.relative_ratio import RelativeRatioBaseline
from repro.baselines.incremental import IncrementalEstimatorBaseline
from repro.baselines.full_training import FullTrainingBaseline

__all__ = [
    "BaselineRunResult",
    "SampleSizeBaseline",
    "FixedRatioBaseline",
    "RelativeRatioBaseline",
    "IncrementalEstimatorBaseline",
    "FullTrainingBaseline",
]
