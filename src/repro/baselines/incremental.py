"""IncEstimator baseline: grow the sample until the accuracy estimate passes.

Section 5.4: "IncEstimator gradually increased the sample size until the
approximate model trained on that sample satisfied the requested accuracy;
the sample size at the k-th iteration was 1000 · k²."

Unlike FixedRatio and RelativeRatio, IncEstimator adapts to the model and
the request — so it meets the accuracy — but it must *train a model at every
step*, which is why its runtime in Figure 7b dwarfs BlinkML's (BlinkML
estimates the final sample size analytically from the initial model alone).
To judge whether a trained model satisfies the request, IncEstimator uses
the same accuracy-estimation machinery BlinkML does (the alternative — a
held-out comparison against a *full* model — would require training m_N and
defeat the purpose).
"""

from __future__ import annotations

import time

from repro.baselines.base import BaselineRunResult, SampleSizeBaseline
from repro.core.accuracy import ModelAccuracyEstimator
from repro.core.contract import ApproximationContract
from repro.core.statistics import StatisticsMethod, compute_statistics
from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler
from repro.models.base import ModelClassSpec


class IncrementalEstimatorBaseline(SampleSizeBaseline):
    """Train on 1000·k² rows at step k until the contract is met."""

    policy_name = "inc_estimator"

    def __init__(
        self,
        spec: ModelClassSpec,
        step_scale: int = 1000,
        n_parameter_samples: int = 64,
        seed: int | None = None,
        optimizer: str | None = None,
        statistics_method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
    ):
        super().__init__(spec, seed=seed, optimizer=optimizer)
        self.step_scale = int(step_scale)
        self.n_parameter_samples = int(n_parameter_samples)
        self.statistics_method = StatisticsMethod(statistics_method)

    def run(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> BaselineRunResult:
        sampler = UniformSampler(train, rng=self._rng)
        estimator = ModelAccuracyEstimator(
            self.spec, holdout, n_parameter_samples=self.n_parameter_samples
        )
        N = train.n_rows
        start = time.perf_counter()
        n_models = 0
        step = 0
        model = None
        sample_size = 0
        while True:
            step += 1
            sample_size = min(self.step_scale * step * step, N)
            sample = sampler.nested_sample(sample_size)
            model = self.spec.fit(sample, method=self.optimizer)
            n_models += 1
            if sample_size >= N:
                break
            statistics = compute_statistics(
                self.spec, model.theta, sample, method=self.statistics_method
            )
            estimate = estimator.estimate(
                model.theta,
                n=sample_size,
                N=N,
                delta=contract.delta,
                statistics=statistics,
            )
            if estimate.epsilon <= contract.epsilon:
                break
        elapsed = time.perf_counter() - start
        return BaselineRunResult(
            model=model,
            sample_size=sample_size,
            training_seconds=elapsed,
            n_models_trained=n_models,
            policy=self.policy_name,
            metadata={"steps": step},
        )
