"""Figure 5 / Table 4 — training-time savings of BlinkML vs. full training.

For each of the paper's eight (model, dataset) combinations, the requested
accuracy is swept and BlinkML's wall-clock training time is compared with
the time to train the exact full model.  The paper reports speed-ups of
6.26×–629× for 95 %-accurate models; at laptop scale the absolute speed-ups
are smaller (full training itself is cheap when N is tens of thousands),
so the table also reports the *sample fraction* — the quantity that drives
the paper's savings and is scale-invariant.

Expected shape (matching the paper): the sample fraction and training-time
ratio increase with the requested accuracy, and the cheapest requests are
served by the initial model alone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ALL_WORKLOAD_KEYS, print_figure_table
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.evaluation.experiments import measure_full_training, run_accuracy_sweep
from repro.evaluation.reporting import format_table


def sweep_workload(workload, repetitions: int = 1):
    spec_factory = workload.spec_factory
    full_model, full_seconds = measure_full_training(spec_factory(), workload.splits)
    records = run_accuracy_sweep(
        spec_factory=spec_factory,
        splits=workload.splits,
        requested_accuracies=workload.requested_accuracies,
        repetitions=repetitions,
        initial_sample_size=2_000,
        n_parameter_samples=64,
        seed=0,
        full_model=full_model,
        full_training_seconds=full_seconds,
    )
    rows = []
    for record in records:
        rows.append(
            {
                "workload": workload.key,
                "requested_accuracy": record.requested_accuracy,
                "training_seconds": record.training_seconds,
                "full_training_seconds": record.full_training_seconds,
                "ratio_to_full": record.training_seconds / record.full_training_seconds,
                "speedup": record.speedup,
                "sample_fraction": record.sample_fraction,
            }
        )
    return rows


@pytest.mark.parametrize("key", ALL_WORKLOAD_KEYS)
def test_fig5_training_time(benchmark, workload_cache, key):
    workload = workload_cache(key)
    rows = sweep_workload(workload)
    print_figure_table(
        f"Figure 5 / Table 4 — training time savings ({key})", format_table(rows)
    )
    benchmark.extra_info["rows"] = rows

    # The benchmarked unit is a single 95%-accurate BlinkML training run,
    # the headline configuration of the paper.
    contract = ApproximationContract.from_accuracy(0.95)

    def train_once():
        trainer = BlinkML(
            workload.make_spec(),
            initial_sample_size=2_000,
            n_parameter_samples=64,
            seed=1,
        )
        return trainer.train(workload.splits.train, workload.splits.holdout, contract)

    result = benchmark.pedantic(train_once, rounds=1, iterations=1)
    assert result.sample_size <= workload.splits.train.n_rows
