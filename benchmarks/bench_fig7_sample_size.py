"""Figure 7 / Tables 6-7 — sample-size estimator vs. the three baselines.

Reproduces the Section 5.4 comparison on the (Lin, Power) and (LR, Criteo)
style workloads:

* **FixedRatio** and **RelativeRatio** pick sample sizes independent of the
  model, so they either miss the requested accuracy or waste data;
* **IncEstimator** adapts and therefore meets the accuracy, but has to train
  a sequence of models, so its runtime is far larger;
* **BlinkML** meets the accuracy while training at most two models.

The printed tables correspond to Figure 7a (actual accuracy per policy) and
Figure 7b (runtime per policy).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_figure_table
from repro.baselines import (
    FixedRatioBaseline,
    IncrementalEstimatorBaseline,
    RelativeRatioBaseline,
)
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.evaluation.experiments import measure_full_training
from repro.evaluation.metrics import model_agreement
from repro.evaluation.reporting import format_table

FIG7_WORKLOADS = ("lin_power", "lr_criteo")
REQUESTED_ACCURACIES = (0.80, 0.90, 0.95, 0.99)


def compare_policies(workload):
    spec = workload.make_spec()
    full_model, full_seconds = measure_full_training(spec, workload.splits)
    rows = []
    for requested in REQUESTED_ACCURACIES:
        contract = ApproximationContract.from_accuracy(requested)

        baselines = {
            "fixed_ratio": FixedRatioBaseline(workload.make_spec(), ratio=0.01, seed=0),
            "relative_ratio": RelativeRatioBaseline(workload.make_spec(), scale=0.10, seed=0),
            "inc_estimator": IncrementalEstimatorBaseline(
                workload.make_spec(), step_scale=1000, n_parameter_samples=48, seed=0
            ),
        }
        for name, baseline in baselines.items():
            outcome = baseline.run(workload.splits.train, workload.splits.holdout, contract)
            rows.append(
                {
                    "workload": workload.key,
                    "policy": name,
                    "requested_accuracy": requested,
                    "actual_accuracy": model_agreement(
                        spec, outcome.model.theta, full_model.theta, workload.splits.holdout
                    ),
                    "sample_size": outcome.sample_size,
                    "runtime_seconds": outcome.training_seconds,
                    "models_trained": outcome.n_models_trained,
                }
            )

        start = time.perf_counter()
        trainer = BlinkML(
            workload.make_spec(), initial_sample_size=2_000, n_parameter_samples=64, seed=0
        )
        blink = trainer.train(workload.splits.train, workload.splits.holdout, contract)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "workload": workload.key,
                "policy": "blinkml",
                "requested_accuracy": requested,
                "actual_accuracy": model_agreement(
                    spec, blink.model.theta, full_model.theta, workload.splits.holdout
                ),
                "sample_size": blink.sample_size,
                "runtime_seconds": elapsed,
                "models_trained": 1 if blink.used_initial_model else 2,
            }
        )
    return rows, full_seconds


@pytest.mark.parametrize("key", FIG7_WORKLOADS)
def test_fig7_sample_size_estimator(benchmark, workload_cache, key):
    workload = workload_cache(key)
    rows, full_seconds = compare_policies(workload)
    print_figure_table(
        f"Figure 7 / Tables 6-7 — sample-size policies ({key}; "
        f"full training {full_seconds:.2f}s)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    contract = ApproximationContract.from_accuracy(0.95)

    def blinkml_once():
        trainer = BlinkML(
            workload.make_spec(), initial_sample_size=2_000, n_parameter_samples=64, seed=3
        )
        return trainer.train(workload.splits.train, workload.splits.holdout, contract)

    benchmark.pedantic(blinkml_once, rounds=1, iterations=1)

    # Reproduction checks on the shape of the result:
    # adaptive policies (IncEstimator, BlinkML) meet the requested accuracy
    # at the strictest level; BlinkML trains no more than two models while
    # IncEstimator usually trains more.
    strict = [row for row in rows if row["requested_accuracy"] == 0.99]
    blink_row = next(row for row in strict if row["policy"] == "blinkml")
    inc_row = next(row for row in strict if row["policy"] == "inc_estimator")
    assert blink_row["actual_accuracy"] >= 0.97
    assert inc_row["actual_accuracy"] >= 0.97
    assert blink_row["models_trained"] <= 2
