"""Figure 6 / Table 5 — requested vs. actual accuracy of approximate models.

For each (model, dataset) combination, BlinkML models are trained repeatedly
at several requested accuracies; the *actual* accuracy is the agreement with
the exact full model on the holdout set.  The paper's claim: the 5th
percentile of the actual accuracies stays above the requested accuracy
(the guarantee holds with probability ≥ 1 − δ = 0.95).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_figure_table
from repro.core.coordinator import BlinkML
from repro.evaluation.experiments import measure_full_training
from repro.evaluation.metrics import model_agreement
from repro.evaluation.reporting import format_table, summarize

# A representative subset keeps the repeated-training benchmark affordable;
# every model class appears once.
FIG6_WORKLOADS = ("lin_power", "lr_higgs", "me_mnist", "ppca_gas")
REPETITIONS = 5


def accuracy_distribution(workload, repetitions: int = REPETITIONS):
    spec = workload.make_spec()
    full_model, _ = measure_full_training(spec, workload.splits)
    rows = []
    for requested in workload.requested_accuracies:
        actuals = []
        for repetition in range(repetitions):
            trainer = BlinkML(
                workload.make_spec(),
                initial_sample_size=2_000,
                n_parameter_samples=64,
                seed=repetition,
            )
            outcome = trainer.train_with_accuracy(
                workload.splits.train, workload.splits.holdout, requested
            )
            actuals.append(
                model_agreement(
                    outcome.model.spec,
                    outcome.model.theta,
                    full_model.theta,
                    workload.splits.holdout,
                )
            )
        stats = summarize(actuals)
        rows.append(
            {
                "workload": workload.key,
                "requested_accuracy": requested,
                "actual_mean": stats["mean"],
                "actual_p5": stats["p5"],
                "actual_p95": stats["p95"],
                "guarantee_met": stats["p5"] >= requested - 0.01,
            }
        )
    return rows


@pytest.mark.parametrize("key", FIG6_WORKLOADS)
def test_fig6_accuracy_guarantees(benchmark, workload_cache, key):
    workload = workload_cache(key)
    rows = accuracy_distribution(workload)
    print_figure_table(
        f"Figure 6 / Table 5 — requested vs actual accuracy ({key})", format_table(rows)
    )
    benchmark.extra_info["rows"] = rows

    def train_once():
        trainer = BlinkML(
            workload.make_spec(), initial_sample_size=2_000, n_parameter_samples=64, seed=99
        )
        return trainer.train_with_accuracy(
            workload.splits.train, workload.splits.holdout, workload.requested_accuracies[-2]
        )

    benchmark.pedantic(train_once, rounds=1, iterations=1)
    # The reproduction check: the 5th percentile of actual accuracies is at
    # or above the requested accuracy for (almost) every level.
    met = sum(1 for row in rows if row["guarantee_met"])
    assert met >= len(rows) - 1
