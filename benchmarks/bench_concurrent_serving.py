"""Benchmark: concurrent contract serving against one bounded session.

A serving deployment answers a shuffled stream of accuracy requests —
different sample sizes n, different confidences δ — against one
:class:`~repro.core.session.EstimationSession`.  This benchmark measures the
three things the bounded caching subsystem (``repro.core.caching``) is
responsible for:

* **throughput** — requests/second served by T threads vs. the serial loop
  (after the first miss per key everything is a lock + quantile lookup, so
  threads should scale until the locks saturate);
* **hit rate** — reported by ``session.cache_stats()``; single-flight means
  concurrent requests for the same missing vector run the k streamed GEMMs
  once, so on an *unbounded* cache the concurrent run misses exactly once
  per distinct key — its hit rate must be >= the serial hit rate on the
  same workload.  (The gate compares the unbounded runs deliberately: once
  eviction is in play, miss counts become request-order-dependent, and a
  thread schedule can legitimately evict differently than the serial
  order — that is churn, not a single-flight regression.);
* **cache memory** — the LRU bound caps the bytes held in the diff cache
  regardless of how many distinct (θ, n) keys the workload touches, where
  the unbounded baseline grows linearly.  (Cache-held bytes are compared
  directly via ``CacheStats.bytes`` — the vectors are small relative to the
  GEMM temporaries, so process-level RSS would mostly measure BLAS noise.)

Correctness is asserted along the way: every concurrent estimate must be
bitwise identical to the serial baseline (the cached base draws make the
computation deterministic regardless of request order).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_concurrent_serving.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.session import EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.models.logistic_regression import LogisticRegressionSpec


def build_splits(n_rows: int, n_features: int):
    data = higgs_like(n_rows=n_rows, n_features=n_features, seed=301)
    return train_holdout_test_split(
        data, SplitSpec(holdout_fraction=0.15, test_fraction=0.05),
        rng=np.random.default_rng(302),
    )


def make_session(splits, args, *, bounded: bool) -> EstimationSession:
    return EstimationSession(
        LogisticRegressionSpec(regularization=1e-3),
        splits.train,
        splits.holdout,
        initial_sample_size=args.initial,
        n_parameter_samples=args.k,
        rng=0,
        diff_cache_entries=args.cache_entries if bounded else None,
        diff_cache_bytes=None,
    )


def build_workload(session: EstimationSession, n_contracts: int, repeats: int):
    """A shuffled mix of (n, δ) accuracy requests against the session.

    ``n_contracts`` distinct sample sizes spread over (n0, N) crossed with a
    couple of confidence levels; each request repeated ``repeats`` times and
    shuffled with a fixed seed so serial and concurrent runs see the same
    stream.
    """
    sizes = np.unique(
        np.geomspace(
            session.initial_sample_size, session.full_size - 1, n_contracts
        ).astype(int)
    )
    deltas = (0.05, 0.01)
    workload = [(int(n), delta) for n in sizes for delta in deltas] * repeats
    random.Random(0).shuffle(workload)
    return workload


def run_workload(session: EstimationSession, workload, n_threads: int):
    """Serve the workload; returns ({(n, δ): ε}, seconds, diff CacheStats)."""
    theta0 = session.initial_model.theta

    def serve(request):
        n, delta = request
        return request, session.accuracy_estimate(theta0, n, delta).epsilon

    start = time.perf_counter()
    if n_threads <= 1:
        served = [serve(request) for request in workload]
    else:
        with ThreadPoolExecutor(n_threads) as pool:
            served = list(pool.map(serve, workload))
    elapsed = time.perf_counter() - start

    results: dict[tuple[int, float], float] = {}
    for request, epsilon in served:
        previous = results.setdefault(request, epsilon)
        if previous != epsilon:
            raise AssertionError(
                f"non-deterministic epsilon for {request}: {previous} vs {epsilon}"
            )
    return results, elapsed, session.cache_stats()["diff"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=60_000)
    parser.add_argument("--features", type=int, default=20)
    parser.add_argument("--initial", type=int, default=2_000, help="initial sample n0")
    parser.add_argument("--k", type=int, default=64, help="parameter samples")
    parser.add_argument("--contracts", type=int, default=24, help="distinct sample sizes")
    parser.add_argument("--repeats", type=int, default=6, help="repeats per request")
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--cache-entries", type=int, default=16, help="bounded diff-cache size")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (20k rows, 12 contracts, k=32)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless concurrent results are bitwise-identical "
            "to serial, the concurrent hit rate >= the serial hit rate, and "
            "the bounded cache stays below the unbounded baseline"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows, args.features = 20_000, 12
        args.initial, args.k = 1_000, 32
        args.contracts, args.repeats, args.threads = 12, 4, 4
        args.cache_entries = 8

    splits = build_splits(args.rows, args.features)

    # Serial baseline on a bounded session.
    serial_session = make_session(splits, args, bounded=True)
    workload = build_workload(serial_session, args.contracts, args.repeats)
    serial_results, serial_seconds, serial_stats = run_workload(
        serial_session, workload, n_threads=1
    )

    # Concurrent run on a fresh bounded session, same workload.
    concurrent_session = make_session(splits, args, bounded=True)
    concurrent_results, concurrent_seconds, concurrent_stats = run_workload(
        concurrent_session, workload, n_threads=args.threads
    )

    # Unbounded baselines: how much cache memory the old dict-based session
    # would have accumulated on the same workload, and the eviction-free
    # hit-rate comparison (with no eviction, misses == distinct keys no
    # matter how requests are ordered, so the serial-vs-concurrent hit
    # rates are comparable without scheduling luck).
    unbounded_session = make_session(splits, args, bounded=False)
    _, _, unbounded_stats = run_workload(unbounded_session, workload, n_threads=1)
    unbounded_concurrent_session = make_session(splits, args, bounded=False)
    _, _, unbounded_concurrent_stats = run_workload(
        unbounded_concurrent_session, workload, n_threads=args.threads
    )

    mismatches = sum(
        1
        for request, epsilon in serial_results.items()
        if concurrent_results.get(request) != epsilon
    )

    header = f"{'run':<26}{'req/s':>10}{'hit rate':>10}{'entries':>9}{'bytes':>10}"
    print(
        f"{len(workload)} requests, {args.contracts} sizes x 2 deltas, "
        f"{args.threads} threads, diff cache <= {args.cache_entries} entries"
    )
    print(header)
    print("-" * len(header))
    for label, seconds, stats in (
        ("serial (bounded)", serial_seconds, serial_stats),
        (f"{args.threads} threads (bounded)", concurrent_seconds, concurrent_stats),
        ("serial (unbounded)", None, unbounded_stats),
        (f"{args.threads} threads (unbounded)", None, unbounded_concurrent_stats),
    ):
        rate = f"{len(workload) / seconds:>10.0f}" if seconds else f"{'-':>10}"
        print(
            f"{label:<26}{rate}{stats.hit_rate:>10.1%}"
            f"{stats.entries:>9}{stats.bytes:>10}"
        )
    print(
        f"concurrent vs serial: {mismatches} mismatching estimates, "
        f"evictions serial={serial_stats.evictions} "
        f"concurrent={concurrent_stats.evictions}"
    )

    if args.check:
        failures = []
        if mismatches:
            failures.append(f"{mismatches} concurrent estimates differ from serial")
        if unbounded_concurrent_stats.hit_rate < unbounded_stats.hit_rate:
            failures.append(
                f"concurrent hit rate {unbounded_concurrent_stats.hit_rate:.1%} "
                f"fell below serial {unbounded_stats.hit_rate:.1%} on the "
                "unbounded cache (single-flight regression: the threaded run "
                "performed duplicate computes for some key)"
            )
        if concurrent_stats.entries > args.cache_entries:
            failures.append(
                f"bounded cache holds {concurrent_stats.entries} entries "
                f"(cap {args.cache_entries})"
            )
        if unbounded_stats.bytes <= concurrent_stats.bytes:
            failures.append(
                f"bounded cache bytes {concurrent_stats.bytes} not below "
                f"unbounded baseline {unbounded_stats.bytes}"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: bitwise-identical estimates, hit rate "
            f"{unbounded_concurrent_stats.hit_rate:.1%} >= "
            f"{unbounded_stats.hit_rate:.1%} (unbounded pair), "
            f"cache {concurrent_stats.bytes} bytes vs unbounded "
            f"{unbounded_stats.bytes} bytes"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
