"""Figure 9 — comparison of the statistics-computation methods.

* **Figure 9a** — how tight each method's variance estimate is: the ratio of
  the estimated parameter variance (α·diag(H⁻¹JH⁻¹)) to the actual variance
  observed by retraining on many independent samples, as the sample size
  grows.  A ratio near (or slightly above) 1 is ideal.
* **Figure 9b** — runtime and covariance accuracy of InverseGradients vs.
  ObservedFisher on a low-dimensional (LR, HIGGS-like) and a
  higher-dimensional (ME, MNIST-like) workload.  InverseGradients calls the
  ``grads`` function d times, so its runtime blows up with dimension while
  ObservedFisher needs a single call.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_figure_table
from repro.core.statistics import compute_statistics
from repro.data.synthetic import higgs_like, mnist_like, power_like
from repro.evaluation.reporting import format_table
from repro.linalg.utils import frobenius_distance
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec

SAMPLE_SIZES = (500, 1_000, 5_000, 10_000)
POPULATION = 60_000


def variance_tightness_study():
    """Figure 9a: estimated / actual parameter variance per method."""
    data = power_like(n_rows=POPULATION, n_features=12, noise=0.4, seed=210)
    spec = LinearRegressionSpec.with_estimated_noise(data, regularization=1e-3)
    rng = np.random.default_rng(0)

    rows = []
    for n in SAMPLE_SIZES:
        # Actual variance: retrain on independent samples of size n.
        repetitions = 30
        estimates = []
        for _ in range(repetitions):
            idx = rng.choice(data.n_rows, size=n, replace=False)
            estimates.append(spec.fit(data.take(idx)).theta)
        actual_variance = np.var(np.array(estimates), axis=0).mean()

        sample = data.take(rng.choice(data.n_rows, size=n, replace=False))
        model = spec.fit(sample)
        alpha = 1.0 / n - 1.0 / data.n_rows
        row = {"sample_size": n, "actual_variance": actual_variance}
        for method in ("closed_form", "inverse_gradients", "observed_fisher"):
            stats = compute_statistics(spec, model.theta, sample, method=method)
            estimated = alpha * stats.covariance.marginal_variances().mean()
            row[f"ratio_{method}"] = estimated / actual_variance
        rows.append(row)
    return rows


def method_efficiency_study():
    """Figure 9b: runtime + accuracy of InverseGradients vs ObservedFisher."""
    workloads = []

    higgs = higgs_like(n_rows=20_000, n_features=28, seed=211)
    workloads.append(("lr_higgs", LogisticRegressionSpec(regularization=1e-3), higgs))

    mnist = mnist_like(n_rows=12_000, n_features=36, n_classes=10, seed=212)
    workloads.append(("me_mnist", MaxEntropySpec(n_classes=10, regularization=1e-3), mnist))

    rows = []
    for key, spec, data in workloads:
        sample = data.take(np.arange(min(5_000, data.n_rows)))
        model = spec.fit(sample)
        reference = compute_statistics(spec, model.theta, sample, method="closed_form")
        reference_dense = reference.covariance.dense()
        for method in ("inverse_gradients", "observed_fisher"):
            start = time.perf_counter()
            stats = compute_statistics(spec, model.theta, sample, method=method)
            elapsed = time.perf_counter() - start
            error = frobenius_distance(stats.covariance.dense(), reference_dense)
            rows.append(
                {
                    "workload": key,
                    "n_parameters": stats.dimension,
                    "method": method,
                    "runtime_seconds": elapsed,
                    "frobenius_error_vs_closed_form": error,
                }
            )
    return rows


def test_fig9a_variance_tightness(benchmark):
    rows = variance_tightness_study()
    print_figure_table(
        "Figure 9a — estimated / actual parameter variance (Lin, power_like)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    data = power_like(n_rows=20_000, n_features=12, noise=0.4, seed=213)
    spec = LinearRegressionSpec.with_estimated_noise(data, regularization=1e-3)
    sample = data.take(np.arange(5_000))
    model = spec.fit(sample)
    benchmark.pedantic(
        lambda: compute_statistics(spec, model.theta, sample, method="observed_fisher"),
        rounds=3,
        iterations=1,
    )

    # Reproduction check: for n >= 5000 every method's ratio is within a
    # factor of two of the truth (the paper's "close to the optimal ratio").
    large = [row for row in rows if row["sample_size"] >= 5_000]
    for row in large:
        for method in ("closed_form", "inverse_gradients", "observed_fisher"):
            assert 0.5 < row[f"ratio_{method}"] < 2.5


def test_fig9b_method_efficiency(benchmark):
    rows = method_efficiency_study()
    print_figure_table(
        "Figure 9b — InverseGradients vs ObservedFisher (runtime / accuracy)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    higgs = higgs_like(n_rows=10_000, n_features=28, seed=214)
    spec = LogisticRegressionSpec(regularization=1e-3)
    sample = higgs.take(np.arange(4_000))
    model = spec.fit(sample)
    benchmark.pedantic(
        lambda: compute_statistics(spec, model.theta, sample, method="observed_fisher"),
        rounds=3,
        iterations=1,
    )

    # Reproduction check (the Figure 9b shape): for the high-dimensional ME
    # workload ObservedFisher is substantially faster than InverseGradients,
    # while both stay accurate.
    me_rows = {row["method"]: row for row in rows if row["workload"] == "me_mnist"}
    assert me_rows["observed_fisher"]["runtime_seconds"] < me_rows["inverse_gradients"]["runtime_seconds"]
