"""Figure 11 — impact of model complexity on the estimated sample size.

* **Figure 11a** — sweep the L2 regularisation coefficient: stronger
  regularisation shrinks the parameter covariance, so the estimated minimum
  sample size decreases.
* **Figure 11b** — sweep the number of parameters: the paper widens the
  Criteo feature vector; we do the same by appending signal-free (noise)
  features to a fixed classification task, so the parameter count grows
  while the underlying prediction problem stays put.  The estimated sample
  size increases with the parameter count.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_figure_table
from repro.core.coordinator import BlinkML
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.reporting import format_table
from repro.models.logistic_regression import LogisticRegressionSpec

N_ROWS = 40_000
REGULARIZATION_SWEEP = (0.0, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
EXTRA_FEATURE_SWEEP = (0, 20, 60, 150)
REQUESTED_ACCURACY = 0.97


def regularization_study():
    data = higgs_like(n_rows=N_ROWS, n_features=16, seed=230)
    splits = train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))
    rows = []
    for beta in REGULARIZATION_SWEEP:
        spec = LogisticRegressionSpec(regularization=beta)
        trainer = BlinkML(spec, initial_sample_size=1_000, n_parameter_samples=64, seed=0)
        outcome = trainer.train_with_accuracy(
            splits.train, splits.holdout, REQUESTED_ACCURACY
        )
        rows.append(
            {
                "regularization": beta,
                "estimated_sample_size": outcome.estimated_minimum_sample_size,
                "sample_fraction": outcome.sample_fraction,
            }
        )
    return rows


def parameter_count_study():
    base = higgs_like(n_rows=N_ROWS, n_features=10, seed=231)
    noise_rng = np.random.default_rng(7)
    rows = []
    for extra in EXTRA_FEATURE_SWEEP:
        if extra:
            X = np.hstack([base.X, noise_rng.normal(size=(base.n_rows, extra))])
        else:
            X = base.X
        splits = train_holdout_test_split(
            Dataset(X, base.y), SplitSpec(0.1, 0.1), rng=np.random.default_rng(1)
        )
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1_000, n_parameter_samples=64, seed=0)
        outcome = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
        rows.append(
            {
                "n_parameters": 10 + extra,
                "estimated_sample_size": outcome.estimated_minimum_sample_size,
                "sample_fraction": outcome.sample_fraction,
            }
        )
    return rows


def test_fig11a_regularization_vs_sample_size(benchmark):
    rows = regularization_study()
    print_figure_table(
        "Figure 11a — regularisation coefficient vs estimated sample size",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    data = higgs_like(n_rows=N_ROWS // 2, n_features=16, seed=232)
    splits = train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(2))

    def estimate_once():
        trainer = BlinkML(
            LogisticRegressionSpec(regularization=1e-3),
            initial_sample_size=1_000,
            n_parameter_samples=64,
            seed=1,
        )
        return trainer.train_with_accuracy(splits.train, splits.holdout, REQUESTED_ACCURACY)

    benchmark.pedantic(estimate_once, rounds=1, iterations=1)

    # Reproduction check: the strongest regularisation needs no more data
    # than the weakest (the Figure 11a trend).
    assert rows[-1]["estimated_sample_size"] <= rows[0]["estimated_sample_size"]


def test_fig11b_parameter_count_vs_sample_size(benchmark):
    rows = parameter_count_study()
    print_figure_table(
        "Figure 11b — number of parameters vs estimated sample size",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    base = higgs_like(n_rows=N_ROWS // 2, n_features=10, seed=233)
    splits = train_holdout_test_split(base, SplitSpec(0.1, 0.1), rng=np.random.default_rng(3))

    def estimate_once():
        trainer = BlinkML(
            LogisticRegressionSpec(regularization=1e-3),
            initial_sample_size=1_000,
            n_parameter_samples=64,
            seed=2,
        )
        return trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)

    benchmark.pedantic(estimate_once, rounds=1, iterations=1)

    # Reproduction check: the widest model needs at least as much data as
    # the narrowest one (the Figure 11b trend).
    assert rows[-1]["estimated_sample_size"] >= rows[0]["estimated_sample_size"]
