"""Benchmark: request-coalescing front-end vs serial contract serving.

A serving deployment receives B concurrent ``train_to`` requests against
one session — duplicates (identical (ε, δ) from different clients) mixed
with distinct-but-related contracts (same ε at several confidence levels,
plus loose contracts the initial model already satisfies).  This
benchmark measures what the coalescing tier (``repro.serving``) is
responsible for:

* **streamed passes** — the fused lockstep search evaluates every active
  search's round candidates as one union pass, so the B-request batch
  must complete in *strictly fewer* streamed passes than B serial calls;
  duplicates must coalesce to *zero* extra passes (a batch of B identical
  contracts costs exactly the passes of one serial call);
* **throughput** — end-to-end wall-clock through a :class:`ContractBatcher`
  (B threads, one batching window) vs the serial loop on an identically
  seeded session.  The gate requires >= 2x at the default B = 8;
* **identity** — every coalesced result must be bitwise identical to the
  serial baseline (same sample size, same θ, same ε estimate): coalescing
  buys passes, never answers.

The workload uses the Lin model class (closed-form-cheap training) so the
streamed size-search evaluations dominate, as they do for the large
holdouts the streaming engine exists for.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_coalesced_serving.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.session import EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import gas_like
from repro.evaluation.streaming import streaming_pass_count
from repro.models.linear_regression import LinearRegressionSpec
from repro.serving import ContractBatcher


def build_splits(n_rows: int, n_features: int):
    data = gas_like(n_rows=n_rows, n_features=n_features, seed=301)
    return train_holdout_test_split(
        data,
        SplitSpec(holdout_fraction=0.45, test_fraction=0.05),
        rng=np.random.default_rng(302),
    )


def make_session(spec, splits, args) -> EstimationSession:
    return EstimationSession(
        spec,
        splits.train,
        splits.holdout,
        initial_sample_size=args.initial,
        n_parameter_samples=args.k,
        rng=0,
    )


def build_contracts(epsilon0: float, batch: int) -> list[ApproximationContract]:
    """B mixed contracts: duplicates + distinct δ at one tight ε + loose ε.

    Three duplicate pairs exercise in-window dedup; the tight-ε group's
    searches follow near-identical bracket trajectories (only the Lemma 2
    quantile position differs with δ), which is where cross-caller union
    passes save the most; the loose-ε members are answered by the initial
    model without any search at all.
    """
    tight = 0.25 * epsilon0
    mixed = [
        ApproximationContract(epsilon=tight, delta=0.05),
        ApproximationContract(epsilon=tight, delta=0.04),
        ApproximationContract(epsilon=tight, delta=0.05),  # duplicate
        ApproximationContract(epsilon=tight, delta=0.06),
        ApproximationContract(epsilon=tight, delta=0.045),
        ApproximationContract(epsilon=tight, delta=0.05),  # duplicate
        ApproximationContract(epsilon=0.9 * epsilon0, delta=0.05),
        ApproximationContract(epsilon=0.8 * epsilon0, delta=0.10),
    ]
    # Scale to the requested batch size by repeating the mix (extra
    # repeats are further duplicates, which is realistic serving traffic).
    return [mixed[i % len(mixed)] for i in range(batch)]


def run_serial(session, contracts):
    before = streaming_pass_count()
    start = time.perf_counter()
    results = [session.train_to(contract) for contract in contracts]
    return results, time.perf_counter() - start, streaming_pass_count() - before


def run_batched(session, contracts, window_ms: float):
    """All B contracts through one batcher from B threads, one window."""
    batcher = ContractBatcher(
        session, window_ms=window_ms, max_batch=len(contracts), name="bench"
    )
    barrier = threading.Barrier(len(contracts))
    results: list = [None] * len(contracts)
    errors: list = []

    def worker(index: int, contract: ApproximationContract) -> None:
        barrier.wait()
        try:
            results[index] = batcher.train_to(contract)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, contract))
        for i, contract in enumerate(contracts)
    ]
    before = streaming_pass_count()
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    passes = streaming_pass_count() - before
    batcher.close()
    if errors:
        raise errors[0]
    return results, elapsed, passes, batcher.stats()


def count_mismatches(serial_results, coalesced_results) -> int:
    mismatches = 0
    for lone, fused in zip(serial_results, coalesced_results):
        identical = (
            fused.sample_size == lone.sample_size
            and np.array_equal(fused.model.theta, lone.model.theta)
            and fused.estimated_epsilon == lone.estimated_epsilon
        )
        mismatches += 0 if identical else 1
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=240_000)
    parser.add_argument("--features", type=int, default=24)
    parser.add_argument("--initial", type=int, default=1_000, help="initial sample n0")
    parser.add_argument("--k", type=int, default=128, help="parameter samples")
    parser.add_argument("--batch", type=int, default=8, help="concurrent requests B")
    parser.add_argument("--window-ms", type=float, default=5_000.0,
                        help="batching window (generous: the window closes when full)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (120k rows)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless coalesced results are bitwise-identical to "
            "serial, duplicates add zero streamed passes, the mixed batch "
            "completes in strictly fewer passes than serial, and batched "
            "throughput is >= 2x serial"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = 120_000

    splits = build_splits(args.rows, args.features)
    spec = LinearRegressionSpec.with_estimated_noise(
        splits.train, regularization=1e-3
    )

    # Probe session: what ε does the initial model already achieve?  The
    # workload contracts are placed relative to it so the tight group needs
    # a genuine size search and the loose group does not.
    probe = make_session(spec, splits, args)
    epsilon0 = probe.answer(
        ApproximationContract(epsilon=0.5, delta=0.05)
    ).estimate.epsilon
    contracts = build_contracts(epsilon0, args.batch)

    # Duplicates-only coalescing: B identical contracts in one batch must
    # cost exactly the streamed passes of a single serial call.
    single_session = make_session(spec, splits, args)
    before = streaming_pass_count()
    single_session.train_to(contracts[0])
    single_passes = streaming_pass_count() - before
    duplicate_session = make_session(spec, splits, args)
    before = streaming_pass_count()
    duplicate_session.train_to_many([contracts[0]] * args.batch)
    duplicate_passes = streaming_pass_count() - before

    # Mixed batch: serial loop vs one coalesced window, fresh identically
    # seeded sessions.
    serial_results, serial_seconds, serial_passes = run_serial(
        make_session(spec, splits, args), contracts
    )
    batched_results, batched_seconds, batched_passes, stats = run_batched(
        make_session(spec, splits, args), contracts, args.window_ms
    )
    mismatches = count_mismatches(serial_results, batched_results)
    speedup = serial_seconds / batched_seconds

    header = f"{'run':<22}{'seconds':>9}{'req/s':>8}{'passes':>8}"
    print(
        f"B={args.batch} concurrent contracts, {args.rows} rows, "
        f"{splits.holdout.n_rows} holdout rows, k={args.k}"
    )
    print(header)
    print("-" * len(header))
    for label, seconds, passes in (
        ("serial loop", serial_seconds, serial_passes),
        ("coalesced batch", batched_seconds, batched_passes),
    ):
        print(
            f"{label:<22}{seconds:>9.2f}{args.batch / seconds:>8.1f}{passes:>8}"
        )
    print(
        f"duplicates: 1 call = {single_passes} passes, "
        f"{args.batch} coalesced duplicates = {duplicate_passes} passes"
    )
    print(
        f"batcher: {stats.batches} batch(es), "
        f"{stats.coalesced_requests} in-window duplicates, "
        f"search passes fused={stats.fused_passes} serial={stats.serial_passes} "
        f"(saved {stats.passes_saved}), speedup {speedup:.2f}x, "
        f"{mismatches} mismatching results"
    )

    if args.check:
        failures = []
        if mismatches:
            failures.append(
                f"{mismatches} coalesced results differ from the serial baseline"
            )
        if duplicate_passes != single_passes:
            failures.append(
                f"{args.batch} coalesced duplicates cost {duplicate_passes} "
                f"streamed passes; a single serial call costs {single_passes} "
                "(duplicates must add zero)"
            )
        if batched_passes >= serial_passes:
            failures.append(
                f"coalesced batch used {batched_passes} streamed passes, "
                f"not strictly fewer than serial's {serial_passes}"
            )
        if speedup < 2.0:
            failures.append(
                f"batched throughput only {speedup:.2f}x serial (gate: >= 2x "
                f"at B={args.batch})"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: bitwise-identical results, duplicates coalesce to zero "
            f"extra passes, {serial_passes} -> {batched_passes} streamed "
            f"passes, {speedup:.2f}x throughput"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
