"""Ablation — sensitivity of BlinkML to its two main design knobs.

Two defaults are inherited from the paper (see docs/serving.md's knob
table):

* the initial sample size ``n0`` (10 000 rows by default, Section 2.3);
* the number of Monte-Carlo parameter samples ``k`` used by the accuracy
  and sample-size estimators (Lemma 2's conservativeness shrinks as k
  grows).

This ablation sweeps both on a fixed (LR, HIGGS-like) workload and reports
how the chosen sample size, the delivered accuracy and the coordinator
overhead react.  Expected shapes:

* larger ``k`` → a more reliable Monte-Carlo estimate.  With the paper's
  default δ = 0.05 the Lemma 2 quantile level is capped at 1, so every one
  of the k sampled differences must fall below ε — hence larger k is *more*
  conservative (never less) and chosen sample sizes grow slightly, at higher
  estimation cost;
* larger ``n0`` → better statistics and a head start, but a floor on the
  returned sample size (the coordinator never trains on fewer than n0
  rows), so the sweet spot is workload-dependent — which is exactly why the
  paper fixes a moderate default.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_figure_table
from repro.core.coordinator import BlinkML
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.metrics import model_agreement
from repro.evaluation.reporting import format_table
from repro.models.logistic_regression import LogisticRegressionSpec

N_ROWS = 40_000
REQUESTED_ACCURACY = 0.95
K_SWEEP = (16, 64, 256)
N0_SWEEP = (500, 2_000, 8_000)


def _splits():
    data = higgs_like(n_rows=N_ROWS, n_features=20, seed=240)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))


def sweep_parameter_samples(splits, full_model):
    spec = LogisticRegressionSpec(regularization=1e-3)
    rows = []
    for k in K_SWEEP:
        start = time.perf_counter()
        trainer = BlinkML(spec, initial_sample_size=2_000, n_parameter_samples=k, seed=0)
        outcome = trainer.train_with_accuracy(splits.train, splits.holdout, REQUESTED_ACCURACY)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "knob": "n_parameter_samples",
                "value": k,
                "chosen_sample_size": outcome.sample_size,
                "actual_accuracy": model_agreement(
                    spec, outcome.model.theta, full_model.theta, splits.holdout
                ),
                "coordinator_seconds": elapsed,
            }
        )
    return rows


def sweep_initial_sample_size(splits, full_model):
    spec = LogisticRegressionSpec(regularization=1e-3)
    rows = []
    for n0 in N0_SWEEP:
        start = time.perf_counter()
        trainer = BlinkML(spec, initial_sample_size=n0, n_parameter_samples=64, seed=0)
        outcome = trainer.train_with_accuracy(splits.train, splits.holdout, REQUESTED_ACCURACY)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "knob": "initial_sample_size",
                "value": n0,
                "chosen_sample_size": outcome.sample_size,
                "actual_accuracy": model_agreement(
                    spec, outcome.model.theta, full_model.theta, splits.holdout
                ),
                "coordinator_seconds": elapsed,
            }
        )
    return rows


def test_ablation_estimator_knobs(benchmark):
    splits = _splits()
    spec = LogisticRegressionSpec(regularization=1e-3)
    full_model = spec.fit(splits.train)

    rows = sweep_parameter_samples(splits, full_model) + sweep_initial_sample_size(
        splits, full_model
    )
    print_figure_table(
        "Ablation — estimator knobs (k parameter samples, initial sample size n0)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    def default_configuration():
        trainer = BlinkML(spec, initial_sample_size=2_000, n_parameter_samples=64, seed=1)
        return trainer.train_with_accuracy(splits.train, splits.holdout, REQUESTED_ACCURACY)

    benchmark.pedantic(default_configuration, rounds=1, iterations=1)

    # The guarantee must hold for every configuration (the knobs trade
    # conservativeness/overhead, never correctness).
    assert all(row["actual_accuracy"] >= REQUESTED_ACCURACY - 0.02 for row in rows)
    # With δ = 0.05 (capped Lemma 2 level) more Monte-Carlo samples are more
    # conservative, so the chosen sample size never shrinks substantially.
    k_rows = {row["value"]: row for row in rows if row["knob"] == "n_parameter_samples"}
    assert k_rows[K_SWEEP[-1]]["chosen_sample_size"] >= 0.8 * k_rows[K_SWEEP[0]]["chosen_sample_size"]
