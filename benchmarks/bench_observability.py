"""Benchmark: observability tier overhead and exported-counter fidelity.

The observability tier (``repro.obs``) promises three things this
benchmark gates:

* **identity** — a coalesced ``train_to_many`` run with telemetry enabled
  is bitwise identical (sample sizes, θ, ε estimates, streamed-pass
  counts) to the same run with telemetry disabled: observation never
  changes answers;
* **overhead** — the enabled run costs at most 5% wall-clock over the
  disabled run (interleaved min-of-repeats, so machine noise hits both
  sides equally);
* **fidelity** — the counters one scrape exports agree exactly with the
  accounting the stack computes for itself: the streamed-pass counter
  with ``streaming_pass_count()``, and the fused/serial/passes-saved
  counters with :class:`CoalescedTrainOutcome`.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_observability.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.session import CoalescedTrainOutcome, EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import gas_like
from repro.evaluation.streaming import streaming_pass_count
from repro.models.linear_regression import LinearRegressionSpec
from repro.obs import get_metrics, get_tracer, set_obs_enabled


def build_splits(n_rows: int, n_features: int):
    data = gas_like(n_rows=n_rows, n_features=n_features, seed=401)
    return train_holdout_test_split(
        data,
        SplitSpec(holdout_fraction=0.45, test_fraction=0.05),
        rng=np.random.default_rng(402),
    )


def make_session(spec, splits, args) -> EstimationSession:
    return EstimationSession(
        spec,
        splits.train,
        splits.holdout,
        initial_sample_size=args.initial,
        n_parameter_samples=args.k,
        rng=0,
    )


def build_contracts(epsilon0: float) -> list[ApproximationContract]:
    """Mixed fleet traffic: tight searches, duplicates, loose no-ops."""
    tight = 0.25 * epsilon0
    return [
        ApproximationContract(epsilon=tight, delta=0.05),
        ApproximationContract(epsilon=tight, delta=0.04),
        ApproximationContract(epsilon=tight, delta=0.05),  # duplicate
        ApproximationContract(epsilon=tight, delta=0.06),
        ApproximationContract(epsilon=0.9 * epsilon0, delta=0.05),
        ApproximationContract(epsilon=0.8 * epsilon0, delta=0.10),
    ]


def pass_counters() -> tuple[float, float]:
    """Current totals of the two exported pass counters (always live)."""
    metrics = get_metrics()
    passes = metrics.counter(
        "repro_streaming_passes_total",
        "Streamed passes over a block source (one per "
        "stream_accumulate() call that consumes holdout blocks).",
        ("scope", "session"),
    ).total()
    saved = metrics.counter(
        "repro_size_search_passes_saved_total",
        "Streamed passes fused lockstep searches avoided versus running "
        "the same contracts serially (exact accounting).",
    ).total()
    return passes, saved


def run_once(spec, splits, contracts, args, enabled: bool):
    """One coalesced fleet dispatch.

    Returns (outcome, seconds, passes, scraped_passes, scraped_saved) —
    the last two are what a scrape delta over the same window reports, so
    the caller can check exported counters against the stack's own
    accounting.  Both baselines are read at the same point (after session
    construction, which streams the initial statistics pass) so the two
    countings cover exactly the same work.
    """
    set_obs_enabled(enabled)
    try:
        session = make_session(spec, splits, args)
        before = streaming_pass_count()
        passes_before, saved_before = pass_counters()
        start = time.perf_counter()
        outcome = session.train_to_many(contracts)
        seconds = time.perf_counter() - start
        passes_after, saved_after = pass_counters()
        return (
            outcome,
            seconds,
            streaming_pass_count() - before,
            passes_after - passes_before,
            saved_after - saved_before,
        )
    finally:
        set_obs_enabled(None)


def summarise(outcome: CoalescedTrainOutcome):
    return [
        (
            result.sample_size,
            result.estimated_epsilon,
            result.model.theta.tobytes(),
        )
        for result in outcome.results
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=240_000)
    parser.add_argument("--features", type=int, default=24)
    parser.add_argument("--initial", type=int, default=1_000, help="initial sample n0")
    parser.add_argument("--k", type=int, default=128, help="parameter samples")
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved timing repeats (min is reported)")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (120k rows, 3 repeats)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless obs-on results are bitwise identical to "
            "obs-off, wall-clock overhead is <= 5%%, and the exported pass "
            "counters match the stack's own fused/serial accounting"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows = 120_000
        args.repeats = 3

    splits = build_splits(args.rows, args.features)
    spec = LinearRegressionSpec.with_estimated_noise(
        splits.train, regularization=1e-3
    )
    probe = make_session(spec, splits, args)
    epsilon0 = probe.answer(
        ApproximationContract(epsilon=0.5, delta=0.05)
    ).estimate.epsilon
    contracts = build_contracts(epsilon0)

    # Interleaved A/B timing: off, on, off, on, ... so drift (thermal,
    # page cache, competing load) lands on both sides.  Min-of-repeats is
    # the standard low-noise estimator for deterministic workloads.
    off_seconds: list[float] = []
    on_seconds: list[float] = []
    off_outcome = on_outcome = None
    off_passes = on_passes = 0
    scraped_passes = scraped_saved = 0.0
    for _ in range(args.repeats):
        off_outcome, seconds, off_passes, _, _ = run_once(
            spec, splits, contracts, args, enabled=False
        )
        off_seconds.append(seconds)
        on_outcome, seconds, on_passes, scraped_passes, scraped_saved = run_once(
            spec, splits, contracts, args, enabled=True
        )
        on_seconds.append(seconds)
    assert off_outcome is not None and on_outcome is not None

    off_best = min(off_seconds)
    on_best = min(on_seconds)
    overhead = (on_best - off_best) / off_best
    identical = summarise(on_outcome) == summarise(off_outcome)
    spans = len(get_tracer().finished_spans())

    header = f"{'run':<16}{'seconds':>9}{'passes':>8}"
    print(
        f"{len(contracts)} coalesced contracts, {args.rows} rows, "
        f"{splits.holdout.n_rows} holdout rows, k={args.k}, "
        f"min of {args.repeats} interleaved repeats"
    )
    print(header)
    print("-" * len(header))
    print(f"{'obs off':<16}{off_best:>9.3f}{off_passes:>8}")
    print(f"{'obs on':<16}{on_best:>9.3f}{on_passes:>8}")
    print(
        f"overhead {overhead * 100:+.2f}%, bitwise identical: {identical}, "
        f"{spans} spans buffered"
    )
    print(
        f"scrape: {scraped_passes:.0f} streamed passes "
        f"(stack counted {on_passes}), passes_saved {scraped_saved:.0f} "
        f"(outcome says {on_outcome.passes_saved})"
    )

    if args.check:
        failures = []
        if not identical:
            failures.append(
                "obs-on results differ from obs-off (identity violated)"
            )
        if on_passes != off_passes:
            failures.append(
                f"obs-on run streamed {on_passes} passes, obs-off "
                f"{off_passes} (observation changed the pass schedule)"
            )
        if overhead > 0.05:
            failures.append(
                f"telemetry overhead {overhead * 100:.2f}% exceeds the 5% gate"
            )
        if scraped_passes != on_passes:
            failures.append(
                f"scrape exported {scraped_passes:.0f} streamed passes; "
                f"streaming_pass_count() delta is {on_passes}"
            )
        if scraped_saved != on_outcome.passes_saved:
            failures.append(
                f"scrape exported passes_saved={scraped_saved:.0f}; the "
                f"coalesced outcome accounts {on_outcome.passes_saved}"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: bitwise-identical results, {overhead * 100:+.2f}% overhead, "
            f"exported counters match the stack's accounting exactly"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
