"""Figure 10 — hyperparameter optimisation with BlinkML vs. full training.

Random search over (feature subset, regularisation coefficient) pairs, as in
Section 5.7: both strategies consume the same candidate sequence; the
traditional approach trains an exact model per candidate while BlinkML
trains 95 %-accurate approximate models.

Scale note: the paper's 961-vs-3 models-per-half-hour gap relies on full
training taking minutes per candidate (tens of millions of rows).  At
laptop scale full training costs well under a second, so BlinkML's fixed
per-candidate overhead (statistics + sample-size search) is not amortised
and the wall-clock counts can even invert.  The scale-invariant part of the
claim — BlinkML reaches an equally good configuration while consuming a
small fraction of the training rows per candidate — is what the assertions
below check; the wall-clock counts are reported for reference.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_figure_table
from repro.core.contract import ApproximationContract
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.reporting import format_table
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.tuning import RandomSearch, SearchSpace

N_ROWS = 40_000
N_FEATURES = 24
TIME_BUDGET_SECONDS = 20.0
N_CANDIDATES = 200


def run_search_comparison():
    data = higgs_like(n_rows=N_ROWS, n_features=N_FEATURES, seed=220)
    splits = train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))
    candidates = SearchSpace(
        n_features=N_FEATURES, min_features=6, max_features=N_FEATURES, seed=1
    ).sample(N_CANDIDATES)

    search = RandomSearch(
        spec_factory=lambda reg: LogisticRegressionSpec(regularization=reg),
        train=splits.train,
        holdout=splits.holdout,
        test=splits.test,
        contract=ApproximationContract(epsilon=0.05, delta=0.05),
        initial_sample_size=2_000,
        n_parameter_samples=48,
        seed=0,
    )
    results = {
        strategy: search.run(
            candidates, strategy=strategy, time_budget_seconds=TIME_BUDGET_SECONDS
        )
        for strategy in ("full", "blinkml")
    }

    rows = []
    for strategy, result in results.items():
        best = result.best_trial
        mean_rows = (
            sum(trial.sample_size for trial in result.trials) / result.n_trials
            if result.trials
            else 0.0
        )
        rows.append(
            {
                "strategy": strategy,
                "models_trained_within_budget": result.n_trials,
                "mean_training_rows_per_model": mean_rows,
                "best_test_accuracy": best.test_accuracy if best else float("nan"),
                "seconds_to_best": best.cumulative_seconds if best else float("nan"),
                "total_seconds": result.trials[-1].cumulative_seconds if result.trials else 0.0,
            }
        )
    return rows, results


def test_fig10_hyperparameter_optimization(benchmark):
    rows, results = run_search_comparison()
    print_figure_table(
        f"Figure 10 — random search within a {TIME_BUDGET_SECONDS:.0f}s budget "
        "(LR, higgs_like)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    # Benchmark unit: evaluating a single candidate with the BlinkML strategy.
    data = higgs_like(n_rows=N_ROWS // 2, n_features=N_FEATURES, seed=221)
    splits = train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(1))
    search = RandomSearch(
        spec_factory=lambda reg: LogisticRegressionSpec(regularization=reg),
        train=splits.train,
        holdout=splits.holdout,
        test=splits.test,
        initial_sample_size=2_000,
        n_parameter_samples=48,
        seed=2,
    )
    single = SearchSpace(n_features=N_FEATURES, min_features=8, seed=3).sample(1)
    benchmark.pedantic(lambda: search.run(single, strategy="blinkml"), rounds=1, iterations=1)

    # Reproduction checks (the scale-invariant part of the Figure 10 claim):
    # BlinkML finds a configuration essentially as good as full training's
    # while each of its models consumes a small fraction of the training
    # rows.  (The wall-clock model counts are reported in the table; see the
    # module docstring for why they only separate at the paper's data scale.)
    by_strategy = {row["strategy"]: row for row in rows}
    assert (
        by_strategy["blinkml"]["best_test_accuracy"]
        >= by_strategy["full"]["best_test_accuracy"] - 0.03
    )
    assert (
        by_strategy["blinkml"]["mean_training_rows_per_model"]
        < 0.6 * by_strategy["full"]["mean_training_rows_per_model"]
    )
