"""Benchmark: a fleet of (model, dataset) pairs under one SessionRegistry.

The cross-session registry (``repro.core.registry``) is responsible for
three fleet-level behaviours that no per-session bound can provide:

* **a global byte budget** — N live (model, dataset) pairs share one byte
  pool; each member's cache caps are rebalanced to ``pool / N``, so the sum
  of cache bytes across the fleet stays within the pool no matter how many
  distinct (θ, n) keys the workload touches.  The unbounded baseline grows
  with the workload instead;
* **cache-served repeats** — a repeated (model, dataset, ε, δ) contract is
  answered from the member session's caches with **zero new model
  evaluations**: a second pass over the whole workload adds no diff-cache
  misses and every answer reports ``from_cache=True``;
* **fingerprint invalidation** — perturbing one dataset and re-offering it
  under the same key constructs a fresh session; the stale one can never
  serve again (its first answer recomputes).

The benchmark serves ``pairs`` sessions × a shuffled stream of contracts
and sample-size estimates, twice (the second pass measures repeat serving),
against a *bounded* and an *unbounded* registry, asserting along the way
that both fleets return bitwise-identical estimates (eviction changes
costs, never values).  A final section turns the fleet over through a
registry one slot too small to demonstrate whole-session LRU eviction.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_session_registry.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import random
import sys
import time

import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.registry import SessionRegistry
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import gas_like, higgs_like
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec


def build_pairs(n_pairs: int, n_rows: int, n_features: int):
    """``n_pairs`` (key, spec, splits, seed) serving pairs, LR/linear mixed."""
    pairs = []
    for index in range(n_pairs):
        seed = 400 + index
        if index % 2 == 0:
            spec = LogisticRegressionSpec(regularization=1e-3)
            data = higgs_like(n_rows=n_rows, n_features=n_features, seed=seed)
            family = "lr"
        else:
            spec = LinearRegressionSpec(regularization=1e-3)
            data = gas_like(n_rows=n_rows, n_features=n_features, seed=seed)
            family = "lin"
        splits = train_holdout_test_split(
            data, SplitSpec(holdout_fraction=0.15, test_fraction=0.05),
            rng=np.random.default_rng(seed),
        )
        pairs.append((f"{family}-{index}", spec, splits, seed))
    return pairs


def build_workload(pairs, n_sizes: int, repeats: int, initial: int, n_rows_min: int):
    """A shuffled stream of ('answer', key, contract) / ('estimate', key, n, δ).

    Contracts exercise the repeated-(ε, δ) path; spread-out sample sizes
    exercise the byte budget (each distinct n caches one difference
    vector per pair).
    """
    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90, delta=0.2),
        ApproximationContract.from_accuracy(0.95, delta=0.01),
    ]
    sizes = np.unique(
        np.geomspace(initial + 1, max(initial + 2, n_rows_min - 1), n_sizes).astype(int)
    )
    workload = []
    for key, _, _, _ in pairs:
        workload += [("answer", key, contract) for contract in contracts]
        workload += [
            ("estimate", key, int(n), delta) for n in sizes for delta in (0.05, 0.2)
        ]
    workload *= repeats
    random.Random(0).shuffle(workload)
    return workload


class Fleet:
    """One registry + the request-serving loop with byte-budget sampling."""

    def __init__(self, registry: SessionRegistry, pairs, initial: int, k: int):
        self.registry = registry
        self.pairs = {key: (spec, splits, seed) for key, spec, splits, seed in pairs}
        self.initial = initial
        self.k = k
        self.peak_bytes = 0
        self.budget_violations = 0

    def session(self, key):
        spec, splits, seed = self.pairs[key]
        return self.registry.get_or_create(
            key, spec, splits.train, splits.holdout,
            initial_sample_size=self.initial, n_parameter_samples=self.k, rng=seed,
        )

    def serve(self, request):
        session = self.session(request[1])
        if request[0] == "answer":
            answer = session.answer(request[2])
            result = (answer.estimate.epsilon, answer.from_cache)
        else:
            _, _, n, delta = request
            estimate = session.accuracy_estimate(session.initial_model.theta, n, delta)
            result = (estimate.epsilon, None)
        current = self.registry.stats().bytes
        self.peak_bytes = max(self.peak_bytes, current)
        budget = self.registry.max_total_bytes
        if budget is not None and current > budget:
            self.budget_violations += 1
        return result

    def run(self, workload):
        start = time.perf_counter()
        results = [self.serve(request) for request in workload]
        return results, time.perf_counter() - start

    def diff_misses(self) -> int:
        totals = self.registry.stats().cache_totals()
        return totals["diff"].misses if "diff" in totals else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pairs", type=int, default=6, help="(model, dataset) pairs")
    parser.add_argument("--rows", type=int, default=30_000)
    parser.add_argument("--features", type=int, default=16)
    parser.add_argument("--initial", type=int, default=1_500, help="initial sample n0")
    parser.add_argument("--k", type=int, default=64, help="parameter samples")
    parser.add_argument("--sizes", type=int, default=8, help="distinct sample sizes per pair")
    parser.add_argument("--repeats", type=int, default=3, help="workload repeats")
    parser.add_argument(
        "--budget-kib", type=int, default=24,
        help="global registry byte budget in KiB (sized to force eviction)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (3 pairs, 8k rows, k=32)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless the fleet stays within the byte budget, "
            "repeats are served with zero new model evaluations, bounded == "
            "unbounded estimates bitwise, and a changed dataset always misses"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.pairs, args.rows, args.features = 3, 8_000, 10
        args.initial, args.k = 500, 32
        args.sizes, args.repeats, args.budget_kib = 6, 2, 6

    budget = args.budget_kib * 1024
    min_session_bytes = max(1, budget // (2 * args.pairs))
    pairs = build_pairs(args.pairs, args.rows, args.features)
    workload = build_workload(pairs, args.sizes, args.repeats, args.initial, args.rows)

    bounded = Fleet(
        SessionRegistry(
            max_sessions=args.pairs,
            max_total_bytes=budget,
            min_session_bytes=min_session_bytes,
        ),
        pairs, args.initial, args.k,
    )
    unbounded = Fleet(
        SessionRegistry(max_sessions=None, max_total_bytes=None),
        pairs, args.initial, args.k,
    )

    # Pass 1 populates; pass 2 must be pure cache serving (measured on the
    # unbounded fleet, where no eviction can force recomputes).
    bounded_results, bounded_seconds = bounded.run(workload)
    unbounded_results, _ = unbounded.run(workload)
    misses_before_repeat = unbounded.diff_misses()
    repeat_results, repeat_seconds = unbounded.run(workload)
    new_misses = unbounded.diff_misses() - misses_before_repeat
    uncached_answers = sum(
        1 for result in repeat_results if result[1] is False
    )
    bounded_repeat, _ = bounded.run(workload)

    mismatches = sum(
        1
        for (eps_a, _), (eps_b, _) in zip(bounded_results, unbounded_results)
        if eps_a != eps_b
    )
    repeat_mismatches = sum(
        1
        for (eps_a, _), (eps_b, _) in zip(bounded_repeat, repeat_results)
        if eps_a != eps_b
    )

    bounded_stats = bounded.registry.stats()
    unbounded_stats = unbounded.registry.stats()
    diff_evictions = bounded_stats.cache_totals()["diff"].evictions

    print(
        f"{len(workload)} requests x 2 passes over {args.pairs} (model, dataset) "
        f"pairs, k={args.k}, global budget {budget} bytes "
        f"(per-session share {bounded.registry.session_budget_bytes()} bytes)"
    )
    header = (
        f"{'fleet':<22}{'req/s':>9}{'sessions':>10}{'hit rate':>10}"
        f"{'peak bytes':>12}{'evictions':>11}"
    )
    print(header)
    print("-" * len(header))
    for label, fleet, stats, seconds in (
        ("bounded", bounded, bounded_stats, bounded_seconds),
        ("unbounded baseline", unbounded, unbounded_stats, repeat_seconds),
    ):
        print(
            f"{label:<22}{len(workload) / seconds:>9.0f}{stats.sessions:>10}"
            f"{stats.hit_rate:>10.1%}{fleet.peak_bytes:>12}"
            f"{diff_evictions if fleet is bounded else 0:>11}"
        )
    print(
        f"repeat pass: {new_misses} new difference-vector computations, "
        f"{uncached_answers} uncached contract answers "
        f"({len(workload)} requests in {repeat_seconds:.2f}s)"
    )
    print(
        f"bounded vs unbounded: {mismatches + repeat_mismatches} mismatching "
        f"estimates, peak {bounded.peak_bytes} vs {unbounded.peak_bytes} bytes"
    )

    # Fingerprint invalidation: perturb one dataset and re-offer its key.
    key, spec, splits, seed = pairs[0]
    stale = bounded.registry.get(key)
    changed_X = splits.train.X.copy()
    changed_X[0, 0] += 1.0
    changed_train = type(splits.train)(changed_X, splits.train.y)
    fresh = bounded.registry.get_or_create(
        key, spec, changed_train, splits.holdout,
        initial_sample_size=args.initial, n_parameter_samples=args.k, rng=seed,
    )
    fresh_answer = fresh.answer(ApproximationContract.from_accuracy(0.85))
    fingerprint_ok = (
        fresh is not stale
        and bounded.registry.stats().fingerprint_invalidations == 1
        and not fresh_answer.from_cache
    )
    print(f"fingerprint change served a fresh session: {fingerprint_ok}")

    # Whole-session LRU eviction: one slot fewer than pairs forces turnover.
    turnover = Fleet(
        SessionRegistry(max_sessions=max(1, args.pairs - 1), max_total_bytes=None),
        pairs, args.initial, args.k,
    )
    for pair_key, _, _, _ in pairs:
        turnover.session(pair_key)
    turnover_evictions = turnover.registry.stats().evictions
    print(
        f"fleet turnover through {max(1, args.pairs - 1)} slots: "
        f"{turnover_evictions} whole-session eviction(s)"
    )

    if args.check:
        failures = []
        if bounded.budget_violations:
            failures.append(
                f"fleet exceeded the global byte budget on "
                f"{bounded.budget_violations} request(s)"
            )
        if bounded_stats.bytes > budget:
            failures.append(
                f"final fleet bytes {bounded_stats.bytes} exceed budget {budget}"
            )
        if new_misses or uncached_answers:
            failures.append(
                f"repeat pass recomputed: {new_misses} new diff misses, "
                f"{uncached_answers} uncached answers (expected zero)"
            )
        if mismatches or repeat_mismatches:
            failures.append(
                f"{mismatches + repeat_mismatches} bounded estimates differ "
                "from the unbounded baseline"
            )
        if bounded.peak_bytes >= unbounded.peak_bytes:
            failures.append(
                f"bounded peak {bounded.peak_bytes} not below unbounded "
                f"peak {unbounded.peak_bytes}"
            )
        if not diff_evictions:
            failures.append("budget pressure caused no evictions (budget too large?)")
        if not fingerprint_ok:
            failures.append("changed dataset did not miss (stale session served)")
        if turnover_evictions != 1:
            failures.append(
                f"fleet turnover evicted {turnover_evictions} sessions (expected 1)"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: fleet held <= {budget} bytes (peak {bounded.peak_bytes}, "
            f"unbounded {unbounded.peak_bytes}), repeats served with zero new "
            "evaluations, fingerprint change always missed"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
