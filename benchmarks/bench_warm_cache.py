"""Benchmark: the cross-process warm cache tier across simulated restarts.

A serving process answers a repeat (ε, δ) contract from its in-memory
caches — but those die with the process.  The warm tier
(``repro.data.store.warm_cache``) persists the two expensive artifacts
(sorted difference vectors, size-search results) as digest-verified
``.npz`` entries in a shared directory, so a *restarted* process answers
the same contracts with **zero streamed holdout passes** and bitwise
identical results.

The benchmark spawns three genuinely separate processes against one warm
directory:

1. **cold** — empty directory; serves the contract stream, pays the full
   streamed-pass cost, publishes warm entries on the way out;
2. **warm restart** — a fresh interpreter, same directory; must serve the
   identical stream with zero streamed passes and bitwise-identical
   results (model θ, sample size, ε estimate);
3. **tampered restart** — every warm entry has a byte flipped first; the
   tier must quarantine the corrupt entries and transparently recompute,
   again bitwise identical — corruption costs passes, never answers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_warm_cache.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import glob
import multiprocessing
import os
import sys
import tempfile
import time

import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.session import EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import streaming_pass_count
from repro.models.logistic_regression import LogisticRegressionSpec


def serve_worker(warm_dir, config, queue):
    """Spawn target: one serving process against a shared warm directory.

    Rebuilds the deterministic workload from ``config``, serves the
    contract stream, and reports result rows, the streamed-pass delta
    around serving (construction excluded), wall time, and tier counters.
    """
    rows_n, features, initial, k, contracts = config
    splits = train_holdout_test_split(
        higgs_like(n_rows=rows_n, n_features=features, seed=13),
        SplitSpec(holdout_fraction=0.2, test_fraction=0.1),
        rng=np.random.default_rng(9),
    )
    session = EstimationSession(
        LogisticRegressionSpec(regularization=1e-3),
        splits.train,
        splits.holdout,
        warm_cache=warm_dir,
        rng=0,
        n_parameter_samples=k,
        initial_sample_size=initial,
    )
    passes_before = streaming_pass_count()
    start = time.perf_counter()
    rows = []
    for epsilon, delta in contracts:
        result = session.train_to(ApproximationContract(epsilon, delta))
        rows.append(
            (
                result.model.theta.tobytes(),
                float(result.estimated_epsilon),
                int(result.sample_size),
            )
        )
    seconds = time.perf_counter() - start
    passes = streaming_pass_count() - passes_before
    tier = session.warm_cache
    tier.flush()
    stats = tier.stats()
    queue.put((rows, passes, seconds, stats.writes, stats.quarantined))


def run_process(warm_dir, config):
    """Run one serving generation in its own interpreter (a true restart)."""
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    worker = ctx.Process(target=serve_worker, args=(warm_dir, config, queue))
    worker.start()
    outcome = queue.get(timeout=600)
    worker.join(timeout=600)
    if worker.exitcode != 0:
        raise RuntimeError(f"serving worker exited with code {worker.exitcode}")
    return outcome


def tamper(warm_dir):
    """Flip one byte in every published warm entry; return how many."""
    paths = glob.glob(os.path.join(warm_dir, "warm-*.npz"))
    for path in paths:
        with open(path, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
    return len(paths)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=20_000)
    parser.add_argument("--features", type=int, default=16)
    parser.add_argument("--initial", type=int, default=1_000, help="initial sample n0")
    parser.add_argument("--k", type=int, default=48, help="parameter samples")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (2.5k rows, k=24)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless the warm restart serves with zero streamed "
            "passes, every generation is bitwise identical, and tampered "
            "entries are quarantined and recomputed"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows, args.features = 2_500, 10
        args.initial, args.k = 250, 24

    contracts = ((0.015, 0.05), (0.010, 0.05), (0.015, 0.05))
    config = (args.rows, args.features, args.initial, args.k, contracts)

    with tempfile.TemporaryDirectory(prefix="repro-warm-bench-") as warm_dir:
        cold_rows, cold_passes, cold_s, cold_writes, _ = run_process(warm_dir, config)
        entries = len(glob.glob(os.path.join(warm_dir, "warm-*.npz")))
        warm_rows, warm_passes, warm_s, _, warm_quarantined = run_process(
            warm_dir, config
        )
        tampered_entries = tamper(warm_dir)
        tam_rows, tam_passes, tam_s, _, tam_quarantined = run_process(
            warm_dir, config
        )

    warm_identical = warm_rows == cold_rows
    tampered_identical = tam_rows == cold_rows

    print(
        f"{len(contracts)} contracts over higgs_like({args.rows}x{args.features}), "
        f"n0={args.initial}, k={args.k}, {entries} warm entries "
        f"({cold_writes} writes)"
    )
    header = f"{'generation':<20}{'passes':>8}{'seconds':>9}{'identical':>11}{'quarantined':>13}"
    print(header)
    print("-" * len(header))
    for label, passes, seconds, identical, quarantined in (
        ("cold (empty dir)", cold_passes, cold_s, True, 0),
        ("warm restart", warm_passes, warm_s, warm_identical, warm_quarantined),
        ("tampered restart", tam_passes, tam_s, tampered_identical, tam_quarantined),
    ):
        print(
            f"{label:<20}{passes:>8}{seconds:>9.2f}"
            f"{str(identical):>11}{quarantined:>13}"
        )
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(
        f"warm restart: {cold_passes} -> {warm_passes} streamed passes "
        f"({speedup:.1f}x serving speedup); tampering {tampered_entries} "
        f"entries cost {tam_passes} recompute passes, never a wrong answer"
    )

    if args.check:
        failures = []
        if cold_passes <= 0:
            failures.append("cold generation streamed no passes (workload trivial?)")
        if cold_writes < 2 or entries < 2:
            failures.append(
                f"cold generation published {entries} entries "
                f"({cold_writes} writes); expected the diff + size artifacts"
            )
        if warm_passes != 0:
            failures.append(
                f"warm restart streamed {warm_passes} passes (expected zero)"
            )
        if not warm_identical:
            failures.append("warm restart results differ from the cold run")
        if warm_quarantined:
            failures.append(
                f"warm restart quarantined {warm_quarantined} healthy entries"
            )
        if tam_quarantined < 1:
            failures.append("tampered entries were not quarantined")
        if tam_passes <= 0:
            failures.append("tampered restart recomputed nothing")
        if not tampered_identical:
            failures.append("tampered restart surfaced a wrong answer")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: restart served {len(contracts)} contracts with zero streamed "
            f"passes, bitwise identical; {tam_quarantined} corrupt entries "
            "quarantined and recomputed correctly"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
