"""Out-of-core benchmark: streaming a memory-mapped sharded holdout.

The storage tier's contract is that holdout evaluation over a
:class:`~repro.data.store.ShardedDataset` needs resident memory
proportional to **one block**, never to the holdout size N — the rows live
in memory-mapped ``.npy`` shards and only the per-block temporaries (the
``(k, block)`` prediction slab and friends) are ever allocated.  This
benchmark measures three paths on a logistic-regression workload whose
holdout is at least 10× the block size:

* the materialised batched diff on the in-memory holdout (the PR 1 path);
* the streamed diff on the in-memory holdout (the PR 2 path);
* the streamed diff on the sharded holdout (this PR), serial and under the
  process backend.

It always asserts bitwise agreement across every path (classification
counts are exact), and with ``--check`` additionally gates:

* sharded streaming peak ≤ ``BLOCK_BOUND_FACTOR · k · block_rows · 8``
  bytes (a small constant factor of one block), and
* sharded streaming peak ≤ the in-memory holdout's own byte size divided
  by ``MIN_HOLDOUT_RATIO`` — i.e. demonstrably *not* O(N).

Peak memory is measured with :mod:`tracemalloc`; memory-mapped pages are
OS page cache, not process allocations, so what is measured is exactly the
working set the streaming engine allocates.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_out_of_core.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
import time
import tracemalloc

import numpy as np

from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import compute_statistics
from repro.data.store import ShardStore
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import StreamingConfig, streaming_prediction_differences
from repro.models.logistic_regression import LogisticRegressionSpec

#: allowance multiplier on the k · block_rows · 8-byte ideal for per-block
#: temporaries (logits, probabilities, labels, the block view itself) —
#: matches benchmarks/bench_streaming_diff.py.
BLOCK_BOUND_FACTOR = 8

#: the sharded streaming peak must stay at least this many times below the
#: in-memory holdout's feature-matrix bytes (the "not O(N)" half of the gate).
MIN_HOLDOUT_RATIO = 3.0


def _measure(fn) -> tuple[np.ndarray, int, float]:
    """(result, peak allocated bytes, best-of-1 wall seconds) for ``fn``."""
    fn()  # warm-up: BLAS initialisation, shard memory maps, caches
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return np.asarray(result), int(peak), elapsed


def run(
    n_train: int,
    n_holdout: int,
    n_features: int,
    k: int,
    block_rows: int,
    shard_rows: int,
    store_dir: str,
) -> dict:
    train = higgs_like(n_rows=n_train, n_features=n_features, seed=211)
    holdout = higgs_like(n_rows=n_holdout, n_features=n_features, seed=212)
    spec = LogisticRegressionSpec(regularization=1e-3)

    write_start = time.perf_counter()
    store = ShardStore.write(holdout, store_dir, shard_rows=shard_rows)
    write_seconds = time.perf_counter() - write_start
    store.verify()
    sharded = store.dataset()
    assert sharded.content_digest() == holdout.content_digest()

    n0 = min(2_000, n_train)
    sample = train.head(n0)
    model = spec.fit(sample)
    statistics = compute_statistics(spec, model.theta, sample)
    sampler = ParameterSampler(statistics, rng=np.random.default_rng(0))
    Thetas = sampler.sample_around(model.theta, n=n0, N=n_train, count=k, tag="bench")

    rows = []
    materialised, materialised_peak, seconds = _measure(
        lambda: spec.prediction_differences(model.theta, Thetas, holdout)
    )
    rows.append(("materialised (in-memory)", materialised_peak, seconds))

    config = StreamingConfig(block_rows=block_rows)
    streamed_memory, memory_peak, seconds = _measure(
        lambda: streaming_prediction_differences(spec, model.theta, Thetas, holdout, config)
    )
    rows.append(("streaming (in-memory)", memory_peak, seconds))

    streamed_sharded, sharded_peak, seconds = _measure(
        lambda: streaming_prediction_differences(spec, model.theta, Thetas, sharded, config)
    )
    rows.append((f"streaming (sharded, block={block_rows})", sharded_peak, seconds))

    process_config = StreamingConfig(
        block_rows=block_rows, n_workers=2, backend="processes"
    )
    streamed_process, process_peak, seconds = _measure(
        lambda: streaming_prediction_differences(
            spec, model.theta, Thetas, sharded, process_config
        )
    )
    rows.append(("streaming (sharded, 2 procs)", process_peak, seconds))

    # Accuracy gate (always on): the storage tier must not change a single
    # bit of the classification estimates, whatever the backend.
    if not np.array_equal(streamed_memory, materialised):
        raise AssertionError("in-memory streamed diff drifted from materialised")
    if not np.array_equal(streamed_sharded, materialised):
        raise AssertionError("sharded streamed diff drifted from materialised")
    if not np.array_equal(streamed_process, materialised):
        raise AssertionError("process-backend streamed diff drifted from materialised")

    return {
        "rows": rows,
        "write_seconds": write_seconds,
        "n_shards": store.n_shards,
        "sharded_peak": sharded_peak,
        "holdout_bytes": int(np.asarray(holdout.X).nbytes),
        "block_bound": BLOCK_BOUND_FACTOR * k * block_rows * 8,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-rows", type=int, default=20_000)
    parser.add_argument("--holdout-rows", type=int, default=150_000)
    parser.add_argument("--features", type=int, default=40)
    parser.add_argument("--k", type=int, default=128, help="parameter samples")
    parser.add_argument("--block", type=int, default=8_192, help="rows per block")
    parser.add_argument("--shard", type=int, default=32_768, help="rows per shard")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (96k-row holdout, k=64, 2k blocks)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless the sharded streaming peak stays within the "
            "O(k · block) bound AND well below the holdout's own byte size"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.train_rows, args.holdout_rows, args.features = 8_000, 96_000, 30
        args.k, args.block, args.shard = 64, 2_048, 8_192
    if args.holdout_rows < 10 * args.block:
        parser.error("holdout must be at least 10x the block size")

    with tempfile.TemporaryDirectory(prefix="bench-out-of-core-") as store_dir:
        report = run(
            args.train_rows, args.holdout_rows, args.features,
            args.k, args.block, args.shard, store_dir,
        )

    header = f"{'path':<34}{'peak MB':>12}{'seconds':>10}"
    print(
        f"holdout={args.holdout_rows} rows x {args.features} features "
        f"({report['holdout_bytes'] / 1e6:.1f} MB), k={args.k}, "
        f"block={args.block}, {report['n_shards']} shards "
        f"(written in {report['write_seconds']:.2f}s)"
    )
    print(header)
    print("-" * len(header))
    for name, peak, seconds in report["rows"]:
        print(f"{name:<34}{peak / 1e6:>12.2f}{seconds:>10.3f}")
    print(
        f"O(k · block) bound: {report['block_bound'] / 1e6:.2f} MB "
        f"(factor {BLOCK_BOUND_FACTOR}); all paths bitwise identical"
    )

    if args.check:
        failures = []
        if report["sharded_peak"] > report["block_bound"]:
            failures.append(
                f"sharded streaming peak {report['sharded_peak'] / 1e6:.2f} MB "
                f"exceeds the O(k · block) bound {report['block_bound'] / 1e6:.2f} MB"
            )
        if report["sharded_peak"] * MIN_HOLDOUT_RATIO > report["holdout_bytes"]:
            failures.append(
                f"sharded streaming peak {report['sharded_peak'] / 1e6:.2f} MB is "
                f"not {MIN_HOLDOUT_RATIO:.1f}x below the holdout's "
                f"{report['holdout_bytes'] / 1e6:.2f} MB — the evaluation is "
                "scaling with N, not with one block"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: sharded peak {report['sharded_peak'] / 1e6:.2f} MB vs "
            f"block bound {report['block_bound'] / 1e6:.2f} MB and holdout "
            f"{report['holdout_bytes'] / 1e6:.2f} MB"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
