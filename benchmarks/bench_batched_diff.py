"""Micro-benchmark: batched vs. per-sample MCS ``diff`` evaluation.

The accuracy estimator (Section 3.3) and every binary-search probe of the
sample-size estimator (Section 4.2) evaluate the MCS ``diff`` function
against k = 128 sampled parameter vectors.  The batched engine collapses
that inner loop into a single ``Thetas @ Xᵀ``-style GEMM; this benchmark
measures the speedup on the Figure 7-style logistic-regression workload
(Criteo-like features) for

* the raw k-candidate diff evaluation (accuracy-estimator inner loop),
* the pairwise two-stage variant (sample-size-estimator inner loop),
* a full ``ModelAccuracyEstimator.estimate`` call.

The loop path is the generic ``ModelClassSpec`` fallback (what any custom
spec without a vectorised override gets); the batched path is the
``LogisticRegressionSpec`` override.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_batched_diff.py [--smoke] [--check 5]

``--check X`` exits non-zero unless every speedup is at least X-fold, which
is how CI smoke-tests the engine.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.accuracy import ModelAccuracyEstimator
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import compute_statistics
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import criteo_like
from repro.models.base import ModelClassSpec
from repro.models.logistic_regression import LogisticRegressionSpec


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (one untimed warm-up call)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(n_rows: int, n_features: int, k: int, repeats: int) -> list[dict]:
    data = criteo_like(n_rows=n_rows, n_features=n_features, density=0.05, seed=103)
    splits = train_holdout_test_split(
        data, SplitSpec(holdout_fraction=0.1, test_fraction=0.1),
        rng=np.random.default_rng(3),
    )
    spec = LogisticRegressionSpec(regularization=1e-3)

    n0 = min(2_000, splits.train.n_rows)
    N = splits.train.n_rows
    sample = splits.train.take(np.arange(n0))
    model = spec.fit(sample)
    statistics = compute_statistics(spec, model.theta, sample)
    sampler = ParameterSampler(statistics, rng=np.random.default_rng(0))
    theta_N = sampler.sample_around(model.theta, n=n0, N=N, count=k, tag="accuracy")
    theta_n_pairs, theta_N_pairs = sampler.two_stage_samples(
        model.theta, n0=n0, n=min(4 * n0, N), N=N, count=k
    )
    holdout = splits.holdout

    rows = []

    def record(name, loop_fn, batched_fn, checked=True):
        batched_result = np.asarray(batched_fn())
        loop_result = np.asarray(loop_fn())
        np.testing.assert_allclose(batched_result, loop_result, atol=1e-12)
        loop_seconds = _time(loop_fn, repeats)
        batched_seconds = _time(batched_fn, repeats)
        rows.append(
            {
                "stage": name,
                "loop_ms": 1e3 * loop_seconds,
                "batched_ms": 1e3 * batched_seconds,
                "speedup": loop_seconds / batched_seconds,
                "checked": checked,
            }
        )

    record(
        f"accuracy diffs (k={k})",
        lambda: ModelClassSpec.prediction_differences(spec, model.theta, theta_N, holdout),
        lambda: spec.prediction_differences(model.theta, theta_N, holdout),
    )
    # Informational: the pairwise loop path already evaluated both sides of
    # every pair, so its batched win is smaller than the accuracy path's
    # (which stops recomputing the reference predictions k times).
    record(
        f"two-stage pairwise diffs (k={k})",
        lambda: ModelClassSpec.pairwise_prediction_differences(
            spec, theta_n_pairs, theta_N_pairs, holdout
        ),
        lambda: spec.pairwise_prediction_differences(theta_n_pairs, theta_N_pairs, holdout),
        checked=False,
    )

    # Full accuracy estimate: loop path simulated by hiding the overrides
    # behind a thin spec that only exposes the scalar diff (i.e. what any
    # custom ModelClassSpec without vectorised overrides experiences).
    class LoopOnlySpec(LogisticRegressionSpec):
        predict_many = ModelClassSpec.predict_many
        prediction_differences = ModelClassSpec.prediction_differences
        pairwise_prediction_differences = ModelClassSpec.pairwise_prediction_differences
        # Pin the streaming factories to the generic fallbacks too, so the
        # loop path keeps the per-pair scalar-diff semantics it is meant to
        # represent (a custom spec with no vectorised overrides at all).
        diff_accumulator = ModelClassSpec.diff_accumulator
        pairwise_diff_accumulator = ModelClassSpec.pairwise_diff_accumulator

    loop_spec = LoopOnlySpec(regularization=1e-3)
    batched_estimator = ModelAccuracyEstimator(spec, holdout, n_parameter_samples=k)
    loop_estimator = ModelAccuracyEstimator(loop_spec, holdout, n_parameter_samples=k)
    record(
        f"full accuracy estimate (k={k})",
        lambda: loop_estimator.estimate(
            model.theta, n=n0, N=N, delta=0.05, statistics=statistics, sampler=sampler
        ).sampled_differences,
        lambda: batched_estimator.estimate(
            model.theta, n=n0, N=N, delta=0.05, statistics=statistics, sampler=sampler
        ).sampled_differences,
    )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=30_000, help="workload rows")
    parser.add_argument("--features", type=int, default=200, help="feature dimension")
    parser.add_argument("--k", type=int, default=128, help="parameter samples")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (6k rows, k=64)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="MIN",
        help=(
            "exit non-zero unless every accuracy-estimate speedup is at "
            "least MIN-fold (the pairwise stage is informational)"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # Keep best-of-3 timing even in smoke mode: on shared CI runners a
        # single scheduler stall during a best-of-1 measurement would trip
        # the --check gate without any real regression.
        args.rows, args.features, args.k, args.repeats = 6_000, 100, 64, 3

    rows = run(args.rows, args.features, args.k, args.repeats)

    header = f"{'stage':<34}{'loop ms':>12}{'batched ms':>12}{'speedup':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['stage']:<34}{row['loop_ms']:>12.2f}"
            f"{row['batched_ms']:>12.2f}{row['speedup']:>9.1f}x"
        )

    if args.check is not None:
        worst = min(row["speedup"] for row in rows if row["checked"])
        if worst < args.check:
            print(f"FAIL: worst speedup {worst:.1f}x below required {args.check:.1f}x")
            return 1
        print(f"OK: worst speedup {worst:.1f}x >= {args.check:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
