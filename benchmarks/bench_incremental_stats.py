"""Incremental statistics benchmark: sidecar reuse, append, refresh cost.

The streaming statistics tier's contract has three measurable halves:

* **bounded residency** — ``compute_statistics`` over a sharded store folds
  per-example gradient blocks into an O(d²) moment summary; the N×d
  gradient matrix never exists, so the peak allocation stays within a
  small constant factor of one ``(block_rows, d)`` block;
* **sidecar bootstrap** — a second session over the same store loads the
  persisted per-shard summaries instead of re-reading raw rows, and must
  produce a bitwise-identical covariance while computing **zero** shard
  summaries;
* **O(new shard) refresh** — after ``ShardStore.append_shards`` grows the
  store, recomputing the statistics reuses every old shard's summary and
  computes exactly one summary per appended shard, again bitwise-equal to
  a cold rebuild over a sidecar-free copy.

Peak memory is measured with :mod:`tracemalloc`; memory-mapped shard pages
are OS page cache, not process allocations, so the measurement is exactly
the working set the statistics fold allocates.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_incremental_stats.py [--smoke] [--check]
"""

from __future__ import annotations

import argparse
import gc
import os
import shutil
import sys
import tempfile
import time
import tracemalloc

import numpy as np

from repro.core.statistics import compute_statistics
from repro.data.store import ShardManifest, ShardStore
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import StreamingConfig
from repro.models.logistic_regression import LogisticRegressionSpec

#: allowance multiplier on the block_rows · d · 8-byte ideal for per-block
#: temporaries (the gradient block, the stacked QR input, logits) — the
#: "never materialises N×d" gate.
BLOCK_BOUND_FACTOR = 24


def _measure(fn) -> tuple[object, int, float]:
    """(result, peak allocated bytes, wall seconds) for ``fn``."""
    fn()  # warm-up: BLAS initialisation, shard memory maps
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, int(peak), elapsed


def _strip_sidecars(directory: str) -> str:
    """A copy of ``directory`` with every statistics sidecar removed."""
    clean = directory.rstrip("/") + "-clean"
    if os.path.exists(clean):
        shutil.rmtree(clean)
    shutil.copytree(directory, clean)
    for name in os.listdir(clean):
        if name.startswith("stats-"):
            os.remove(os.path.join(clean, name))
    manifest = ShardManifest.load(clean)
    ShardManifest(
        name=manifest.name,
        n_rows=manifest.n_rows,
        n_features=manifest.n_features,
        x_dtype=manifest.x_dtype,
        y_dtype=manifest.y_dtype,
        shards=manifest.shards,
        content_digest=manifest.content_digest,
        label_moments=manifest.label_moments,
        version=manifest.version,
        metadata=dict(manifest.metadata),
        statistics=(),
    ).save(clean)
    return clean


def run(
    n_rows: int,
    n_append: int,
    n_features: int,
    block_rows: int,
    shard_rows: int,
    store_dir: str,
) -> dict:
    data = higgs_like(n_rows=n_rows + n_append, n_features=n_features, seed=311)
    spec = LogisticRegressionSpec(regularization=1e-3)
    model = spec.fit(data.head(min(4_000, n_rows)))
    theta = model.theta
    config = StreamingConfig(block_rows=block_rows)

    store = ShardStore.write(data.head(n_rows), store_dir, shard_rows=shard_rows)
    n_old_shards = store.n_shards

    # Publish the per-shard sidecars once (un-measured): this is the
    # session-bootstrap write the later paths reuse.
    cold = compute_statistics(
        spec, theta, ShardStore.open(store_dir).dataset(), streaming=config
    )

    rows = []
    # Raw-row streaming on a sidecar-free copy: persist=False keeps the
    # state stable, so the warm-up + measure protocol is sound.
    raw_dir = _strip_sidecars(store_dir)
    raw, raw_peak, seconds = _measure(
        lambda: compute_statistics(
            spec, theta, ShardStore.open(raw_dir).dataset(),
            streaming=config, persist=False,
        )
    )
    rows.append((f"raw-row streamed ({n_old_shards} shards)", raw_peak, seconds))
    shutil.rmtree(raw_dir)

    warm, warm_peak, warm_seconds = _measure(
        lambda: compute_statistics(
            spec, theta, ShardStore.open(store_dir).dataset(),
            streaming=config,
        )
    )
    rows.append(("bootstrap from sidecars", warm_peak, warm_seconds))

    append_start = time.perf_counter()
    store.append_shards(
        [(data.X[n_rows:], data.y[n_rows:])], shard_rows=shard_rows
    )
    append_seconds = time.perf_counter() - append_start
    n_new_shards = store.n_shards - n_old_shards
    store.verify()

    # The refresh is a one-shot state transition (its publish makes every
    # later call a pure sidecar load), so measure the single call directly —
    # BLAS and the memory maps are warm from the runs above.
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    refreshed = compute_statistics(
        spec, theta, ShardStore.open(store_dir).dataset(), streaming=config
    )
    seconds = time.perf_counter() - start
    _, refresh_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rows.append((f"refresh (+{n_new_shards} shards)", refresh_peak, seconds))

    rebuild_dir = _strip_sidecars(store_dir)
    rebuilt, rebuild_peak, seconds = _measure(
        lambda: compute_statistics(
            spec, theta, ShardStore.open(rebuild_dir).dataset(),
            streaming=config, persist=False,
        )
    )
    rows.append((f"cold rebuild ({store.n_shards} shards)", rebuild_peak, seconds))
    shutil.rmtree(rebuild_dir)

    # Correctness gates (always on): sidecar reuse and the incremental
    # refresh must be bitwise-identical to computing from raw rows.
    if not np.array_equal(cold.covariance.dense(), raw.covariance.dense()):
        raise AssertionError("sidecar publish drifted from the raw-row streaming")
    if not np.array_equal(cold.covariance.dense(), warm.covariance.dense()):
        raise AssertionError("sidecar bootstrap drifted from the cold computation")
    if not np.array_equal(refreshed.covariance.dense(), rebuilt.covariance.dense()):
        raise AssertionError("incremental refresh drifted from the cold rebuild")

    return {
        "rows": rows,
        "append_seconds": append_seconds,
        "n_old_shards": n_old_shards,
        "n_new_shards": n_new_shards,
        "warm": warm,
        "refreshed": refreshed,
        "stream_peak": max(raw_peak, rebuild_peak),
        "block_bound": BLOCK_BOUND_FACTOR * block_rows * n_features * 8,
        "matrix_bytes": (n_rows + n_append) * n_features * 8,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=200_000)
    parser.add_argument("--append-rows", type=int, default=40_000)
    parser.add_argument("--features", type=int, default=30)
    parser.add_argument("--block", type=int, default=8_192, help="rows per block")
    parser.add_argument("--shard", type=int, default=32_768, help="rows per shard")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (48k rows + 12k appended)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=(
            "exit non-zero unless sidecar bootstrap computes zero summaries, "
            "refresh computes exactly one summary per appended shard, and the "
            "streamed fold stays within the O(block · d) residency bound"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.rows, args.append_rows, args.features = 48_000, 12_000, 20
        args.block, args.shard = 2_048, 6_000

    with tempfile.TemporaryDirectory(prefix="bench-incr-stats-") as parent:
        store_dir = os.path.join(parent, "store")
        report = run(
            args.rows, args.append_rows, args.features,
            args.block, args.shard, store_dir,
        )

    header = f"{'path':<34}{'peak MB':>12}{'seconds':>10}"
    print(
        f"store={args.rows} rows (+{args.append_rows} appended) x "
        f"{args.features} features, block={args.block}, shard={args.shard}; "
        f"append took {report['append_seconds']:.2f}s"
    )
    print(header)
    print("-" * len(header))
    for name, peak, seconds in report["rows"]:
        print(f"{name:<34}{peak / 1e6:>12.2f}{seconds:>10.3f}")
    warm, refreshed = report["warm"], report["refreshed"]
    print(
        f"sidecar bootstrap: reused={warm.reused_shard_summaries} "
        f"computed={warm.computed_shard_summaries}; refresh: "
        f"reused={refreshed.reused_shard_summaries} "
        f"computed={refreshed.computed_shard_summaries}; all bitwise identical"
    )

    if args.check:
        failures = []
        if warm.computed_shard_summaries != 0 or (
            warm.reused_shard_summaries != report["n_old_shards"]
        ):
            failures.append(
                "sidecar bootstrap recomputed summaries: expected "
                f"0 computed / {report['n_old_shards']} reused, got "
                f"{warm.computed_shard_summaries} / {warm.reused_shard_summaries}"
            )
        if refreshed.computed_shard_summaries != report["n_new_shards"] or (
            refreshed.reused_shard_summaries != report["n_old_shards"]
        ):
            failures.append(
                "refresh is not O(new shard): expected "
                f"{report['n_new_shards']} computed / "
                f"{report['n_old_shards']} reused, got "
                f"{refreshed.computed_shard_summaries} / "
                f"{refreshed.reused_shard_summaries}"
            )
        if report["stream_peak"] > report["block_bound"]:
            failures.append(
                f"streamed fold peak {report['stream_peak'] / 1e6:.2f} MB "
                f"exceeds the O(block · d) bound "
                f"{report['block_bound'] / 1e6:.2f} MB — the gradient matrix "
                "is being materialised"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: stream peak {report['stream_peak'] / 1e6:.2f} MB vs block "
            f"bound {report['block_bound'] / 1e6:.2f} MB (full matrix would "
            f"be {report['matrix_bytes'] / 1e6:.2f} MB); refresh computed "
            f"exactly {report['n_new_shards']} new summaries"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
