"""Micro-benchmark: streaming sharded vs. materialised holdout evaluation.

The materialised batched diff path (PR 1) evaluates all k candidate
parameters in one GEMM but allocates the full ``(k, n_holdout)`` prediction
block; the streaming engine (:mod:`repro.evaluation.streaming`) shards the
holdout into row blocks and accumulates per-candidate disagreement counts,
keeping peak memory at O(k · block) regardless of holdout size.

This benchmark measures both paths on a logistic-regression workload whose
holdout is at least 10× the block size, checks that the results agree to
1e-12, and (with ``--check``) asserts the memory contract:

* streaming peak ≤ materialised peak / RATIO, and
* streaming peak ≤ 8 · k · block_rows · 8 bytes (the O(k · block) bound
  with an allowance for the handful of per-block temporaries: logits,
  probabilities, labels and the block view itself).

Peak memory is measured with :mod:`tracemalloc` (NumPy array buffers are
tracked).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming_diff.py [--smoke] [--check 3]
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
import tracemalloc

import numpy as np

from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import compute_statistics
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import StreamingConfig, streaming_prediction_differences
from repro.models.logistic_regression import LogisticRegressionSpec

#: allowance multiplier on the k · block_rows · 8-byte ideal for per-block
#: temporaries (see module docstring).
BLOCK_BOUND_FACTOR = 8


def _measure(fn) -> tuple[np.ndarray, int, float]:
    """(result, peak allocated bytes, best-of-1 wall seconds) for ``fn``."""
    fn()  # warm-up: BLAS initialisation and caches out of the measurement
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return np.asarray(result), int(peak), elapsed


def run(n_train: int, n_holdout: int, n_features: int, k: int, block_rows: int) -> dict:
    train = higgs_like(n_rows=n_train, n_features=n_features, seed=201)
    holdout = higgs_like(n_rows=n_holdout, n_features=n_features, seed=202)
    spec = LogisticRegressionSpec(regularization=1e-3)

    n0 = min(2_000, n_train)
    sample = train.head(n0)
    model = spec.fit(sample)
    statistics = compute_statistics(spec, model.theta, sample)
    sampler = ParameterSampler(statistics, rng=np.random.default_rng(0))
    Thetas = sampler.sample_around(model.theta, n=n0, N=n_train, count=k, tag="bench")

    rows = []
    materialised, materialised_peak, materialised_seconds = _measure(
        lambda: spec.prediction_differences(model.theta, Thetas, holdout)
    )
    rows.append(("materialised", materialised_peak, materialised_seconds))

    config = StreamingConfig(block_rows=block_rows)
    streamed, streamed_peak, streamed_seconds = _measure(
        lambda: streaming_prediction_differences(spec, model.theta, Thetas, holdout, config)
    )
    rows.append((f"streaming (block={block_rows})", streamed_peak, streamed_seconds))

    threaded_config = StreamingConfig(block_rows=block_rows, n_workers=4)
    threaded, threaded_peak, threaded_seconds = _measure(
        lambda: streaming_prediction_differences(
            spec, model.theta, Thetas, holdout, threaded_config
        )
    )
    rows.append(("streaming (4 workers)", threaded_peak, threaded_seconds))

    np.testing.assert_allclose(streamed, materialised, atol=1e-12)
    np.testing.assert_allclose(threaded, materialised, atol=1e-12)

    return {
        "rows": rows,
        "materialised_peak": materialised_peak,
        "streamed_peak": streamed_peak,
        "block_bound": BLOCK_BOUND_FACTOR * k * block_rows * 8,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-rows", type=int, default=20_000)
    parser.add_argument("--holdout-rows", type=int, default=120_000)
    parser.add_argument("--features", type=int, default=40)
    parser.add_argument("--k", type=int, default=128, help="parameter samples")
    parser.add_argument("--block", type=int, default=8_192, help="rows per block")
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast configuration for CI (48k-row holdout, k=64, 2k blocks)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="RATIO",
        help=(
            "exit non-zero unless streaming peak memory is at most "
            "1/RATIO of the materialised peak AND within the O(k · block) bound"
        ),
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.train_rows, args.holdout_rows, args.features = 8_000, 48_000, 30
        args.k, args.block = 64, 2_048
    if args.holdout_rows < 10 * args.block:
        parser.error("holdout must be at least 10x the block size")

    report = run(args.train_rows, args.holdout_rows, args.features, args.k, args.block)

    header = f"{'path':<28}{'peak MB':>12}{'seconds':>10}"
    print(f"holdout={args.holdout_rows} rows, k={args.k}, block={args.block}")
    print(header)
    print("-" * len(header))
    for name, peak, seconds in report["rows"]:
        print(f"{name:<28}{peak / 1e6:>12.2f}{seconds:>10.3f}")
    print(
        f"O(k · block) bound: {report['block_bound'] / 1e6:.2f} MB "
        f"(factor {BLOCK_BOUND_FACTOR})"
    )

    if args.check is not None:
        failures = []
        if report["streamed_peak"] * args.check > report["materialised_peak"]:
            failures.append(
                f"streaming peak {report['streamed_peak'] / 1e6:.2f} MB is not "
                f"{args.check:.1f}x below materialised "
                f"{report['materialised_peak'] / 1e6:.2f} MB"
            )
        if report["streamed_peak"] > report["block_bound"]:
            failures.append(
                f"streaming peak {report['streamed_peak'] / 1e6:.2f} MB exceeds the "
                f"O(k · block) bound {report['block_bound'] / 1e6:.2f} MB"
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}")
            return 1
        print(
            f"OK: streaming peak {report['streamed_peak'] / 1e6:.2f} MB, "
            f"materialised {report['materialised_peak'] / 1e6:.2f} MB, "
            f"bound {report['block_bound'] / 1e6:.2f} MB"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
