"""Shared workload definitions for the benchmark harness.

Each benchmark module regenerates one figure/table of the paper's
evaluation (see the benchmark index in README.md).  The workloads below
are the scaled-down counterparts of the paper's eight (model, dataset)
combinations; row counts and dimensions are laptop-sized but every code
path exercised by the original experiments is exercised here too.

Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` flag lets the per-figure tables print; every table is also
attached to the pytest-benchmark ``extra_info`` of its benchmark entry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.splits import DataSplits, SplitSpec, train_holdout_test_split
from repro.data.synthetic import (
    criteo_like,
    gas_like,
    higgs_like,
    mnist_like,
    power_like,
    yelp_like,
)
from repro.models.base import ModelClassSpec
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.ppca import PPCASpec

#: default scale for benchmark workloads; increase to approach paper scale.
BENCH_ROWS = 30_000


@dataclass
class Workload:
    """One (model, dataset) combination of the paper's evaluation."""

    key: str
    model_name: str
    dataset_name: str
    splits: DataSplits
    spec_factory: "callable"
    requested_accuracies: tuple[float, ...]

    def make_spec(self) -> ModelClassSpec:
        return self.spec_factory()


def _split(dataset: Dataset, seed: int) -> DataSplits:
    return train_holdout_test_split(
        dataset, SplitSpec(holdout_fraction=0.1, test_fraction=0.1),
        rng=np.random.default_rng(seed),
    )


def build_workload(key: str, n_rows: int = BENCH_ROWS) -> Workload:
    """Construct one of the eight paper combinations at benchmark scale."""
    classification_sweep = (0.80, 0.90, 0.95, 0.99)
    ppca_sweep = (0.90, 0.99, 0.999)

    if key == "lin_gas":
        data = gas_like(n_rows=n_rows, n_features=30, seed=101)
        splits = _split(data, 1)
        factory = lambda: LinearRegressionSpec.with_estimated_noise(
            splits.train, regularization=1e-3
        )
        return Workload(key, "lin", "gas_like", splits, factory, classification_sweep)
    if key == "lin_power":
        data = power_like(n_rows=n_rows, n_features=40, seed=102)
        splits = _split(data, 2)
        factory = lambda: LinearRegressionSpec.with_estimated_noise(
            splits.train, regularization=1e-3
        )
        return Workload(key, "lin", "power_like", splits, factory, classification_sweep)
    if key == "lr_criteo":
        data = criteo_like(n_rows=n_rows, n_features=200, density=0.05, seed=103)
        splits = _split(data, 3)
        factory = lambda: LogisticRegressionSpec(regularization=1e-3)
        return Workload(key, "lr", "criteo_like", splits, factory, classification_sweep)
    if key == "lr_higgs":
        data = higgs_like(n_rows=n_rows, n_features=28, seed=104)
        splits = _split(data, 4)
        factory = lambda: LogisticRegressionSpec(regularization=1e-3)
        return Workload(key, "lr", "higgs_like", splits, factory, classification_sweep)
    if key == "me_mnist":
        data = mnist_like(n_rows=n_rows, n_features=36, n_classes=10, seed=105)
        splits = _split(data, 5)
        factory = lambda: MaxEntropySpec(n_classes=10, regularization=1e-3)
        return Workload(key, "me", "mnist_like", splits, factory, classification_sweep)
    if key == "me_yelp":
        data = yelp_like(n_rows=n_rows // 2, n_features=120, n_classes=5, seed=106)
        splits = _split(data, 6)
        factory = lambda: MaxEntropySpec(n_classes=5, regularization=1e-3)
        return Workload(key, "me", "yelp_like", splits, factory, classification_sweep)
    if key == "ppca_mnist":
        base = mnist_like(n_rows=n_rows // 2, n_features=36, n_classes=10, seed=107)
        centered = Dataset(base.X - base.X.mean(axis=0), None, name="mnist_like")
        splits = _split(centered, 7)
        factory = lambda: PPCASpec(n_factors=10, sigma2=1.0)
        return Workload(key, "ppca", "mnist_like", splits, factory, ppca_sweep)
    if key == "ppca_gas":
        # The paper's second PPCA workload uses the HIGGS features.  The
        # synthetic higgs_like stand-in is nearly isotropic, so a 10-factor
        # PPCA model is not identifiable on it (any factor basis of the noise
        # subspace fits equally well) and the parameter-based difference
        # metric becomes meaningless.  The sensor-array workload (gas_like
        # features, 12 latent factors) plays the same role — an
        # unsupervised, dense, moderate-dimensional factor extraction — with
        # an identifiable 10-factor structure.
        base = gas_like(n_rows=n_rows // 2, n_features=96, seed=108)
        centered = Dataset(base.X - base.X.mean(axis=0), None, name="gas_like")
        splits = _split(centered, 8)
        factory = lambda: PPCASpec(n_factors=10, sigma2=1.0)
        return Workload(key, "ppca", "gas_like", splits, factory, ppca_sweep)
    raise KeyError(f"unknown workload {key!r}")


ALL_WORKLOAD_KEYS = (
    "lin_gas",
    "lin_power",
    "lr_criteo",
    "lr_higgs",
    "me_mnist",
    "me_yelp",
    "ppca_mnist",
    "ppca_gas",
)


@pytest.fixture(scope="session")
def workload_cache():
    """Build workloads lazily and share them across benchmark modules."""
    cache: dict[str, Workload] = {}

    def get(key: str, n_rows: int = BENCH_ROWS) -> Workload:
        cache_key = f"{key}:{n_rows}"
        if cache_key not in cache:
            cache[cache_key] = build_workload(key, n_rows=n_rows)
        return cache[cache_key]

    return get


def print_figure_table(title: str, table: str) -> None:
    """Print one figure's reproduction table with a recognisable banner."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{table}\n")
