"""Figure 8 / Tables 8-9 — impact of data dimension.

Reproduces the Section 5.5 study on the Criteo-style logistic-regression
workload with a growing number of features:

* **Figure 8a** — BlinkML's runtime breakdown (initial training, statistics
  computation, sample-size search, final training) and its ratio to full
  training;
* **Figure 8b** — generalisation error of the full model vs. BlinkML's
  approximate model, together with the predicted bound from Lemma 1;
* **Figure 8c** — optimiser iteration counts for full vs. approximate
  training (the savings come from cheaper gradients, not fewer iterations).
"""

from __future__ import annotations

import time


from benchmarks.conftest import print_figure_table
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.core.guarantees import generalization_error_bound
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import criteo_like
from repro.evaluation.metrics import generalization_error
from repro.evaluation.reporting import format_table
from repro.models.logistic_regression import LogisticRegressionSpec

import numpy as np

FEATURE_COUNTS = (50, 200, 800)
N_ROWS = 25_000


def run_dimension_study():
    rows = []
    for n_features in FEATURE_COUNTS:
        data = criteo_like(n_rows=N_ROWS, n_features=n_features, density=0.05, seed=200)
        splits = train_holdout_test_split(
            data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0)
        )
        spec = LogisticRegressionSpec(regularization=1e-3)

        start = time.perf_counter()
        full_model = spec.fit(splits.train)
        full_seconds = time.perf_counter() - start

        trainer = BlinkML(spec, initial_sample_size=2_000, n_parameter_samples=64, seed=0)
        contract = ApproximationContract.from_accuracy(0.95)
        outcome = trainer.train(splits.train, splits.holdout, contract)

        approx_error = generalization_error(outcome.model, splits.test)
        full_error = generalization_error(full_model, splits.test)
        predicted_bound = generalization_error_bound(approx_error, contract.epsilon)

        timings = outcome.timings
        rows.append(
            {
                "n_features": n_features,
                "initial_training_s": timings.initial_training_seconds,
                "statistics_s": timings.statistics_seconds,
                "size_search_s": timings.sample_size_search_seconds,
                "final_training_s": timings.final_training_seconds,
                "blinkml_total_s": timings.total_seconds,
                "full_training_s": full_seconds,
                "ratio_to_full": timings.total_seconds / full_seconds,
                "gen_error_full": full_error,
                "gen_error_blinkml": approx_error,
                "predicted_bound": predicted_bound,
                "bound_holds": full_error <= predicted_bound + 0.01,
                "iters_full": full_model.optimization.n_iterations,
                "iters_blinkml": outcome.model.optimization.n_iterations,
            }
        )
    return rows


def test_fig8_dimension_impact(benchmark):
    rows = run_dimension_study()
    print_figure_table(
        "Figure 8 / Tables 8-9 — impact of the number of features (LR, criteo_like)",
        format_table(rows),
    )
    benchmark.extra_info["rows"] = rows

    # Benchmark unit: one BlinkML training at the middle dimension.
    data = criteo_like(n_rows=N_ROWS, n_features=FEATURE_COUNTS[1], density=0.05, seed=201)
    splits = train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(1))
    spec = LogisticRegressionSpec(regularization=1e-3)
    contract = ApproximationContract.from_accuracy(0.95)

    def train_once():
        trainer = BlinkML(spec, initial_sample_size=2_000, n_parameter_samples=64, seed=1)
        return trainer.train(splits.train, splits.holdout, contract)

    benchmark.pedantic(train_once, rounds=1, iterations=1)

    # Reproduction checks: the Lemma 1 bound holds at every dimension, the
    # generalisation errors of the approximate and full models stay close,
    # and the statistics/size-search overhead grows with d (Figure 8a).
    assert all(row["bound_holds"] for row in rows)
    assert all(abs(row["gen_error_full"] - row["gen_error_blinkml"]) < 0.05 for row in rows)
    assert rows[-1]["statistics_s"] >= rows[0]["statistics_s"]
